"""What-if: a stricter, better-complied-with lockdown.

Shows how to compose a custom scenario from the public configuration
surface — here a country where the work-from-home shift is nearly total
and adherence never decays — and compares its network impact against
the calibrated 2020 baseline.

    python examples/custom_scenario.py
"""

from repro.core import CovidImpactStudy
from repro.mobility.behavior import BehaviorSettings
from repro.mobility.pandemic import PandemicTimeline
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator


def main() -> None:
    base = SimulationConfig.small(seed=2020)

    strict = base.with_overrides(
        behavior=BehaviorSettings(
            wfh_max=0.97,  # almost nobody commutes
            social_reduction=0.995,  # no social visits at all
            errand_reduction=0.6,  # one shop a week
        ),
        timeline=PandemicTimeline(
            adherence_decay_per_day=0.0,  # adherence never fades
        ),
    )

    print("simulating the 2020 baseline ...")
    factual = CovidImpactStudy(Simulator(base).run())
    print("simulating the strict-lockdown scenario ...")
    stricter = CovidImpactStudy(Simulator(strict).run())

    rows = [
        ("gyration (weeks 13-14)", "gyration_change_lockdown_pct", "%"),
        ("entropy (weeks 13-14)", "entropy_change_lockdown_pct", "%"),
        ("downlink volume minimum", "dl_volume_min_pct", "%"),
        ("active DL users minimum", "active_users_min_pct", "%"),
        ("radio load minimum", "radio_load_min_pct", "%"),
        ("voice volume peak", "voice_volume_peak_pct", "%"),
        ("Inner Londoners away", "inner_london_away_share_lockdown", ""),
    ]
    factual_summary = factual.summary()
    strict_summary = stricter.summary()

    print()
    print(f"{'metric':<28}{'2020 baseline':>16}{'strict lockdown':>18}")
    print("-" * 62)
    for label, key, unit in rows:
        print(
            f"{label:<28}{factual_summary[key]:>15.1f}{unit}"
            f"{strict_summary[key]:>17.1f}{unit}"
        )

    print()
    print(
        "A stricter lockdown pushes mobility and radio usage further "
        "down, but uplink/voice dynamics barely move — the surge is "
        "driven by the *existence* of confinement, not its depth."
    )


if __name__ == "__main__":
    main()
