"""Tests for the experiment grid runner and comparative reports."""

import json

import pytest

from repro import api, telemetry
from repro.datasets.runcache import clear_memo
from repro.experiments import (
    DELTA_METRICS,
    ExperimentSpec,
    compare_runs,
    delta_table,
    run_grid,
)
from repro.experiments.grid import CELL_SIDECAR

SCENARIOS = ("no_intervention", "second_wave")


def micro_spec(**overrides):
    settings = dict(
        scenarios=SCENARIOS,
        seeds=(1,),
        preset="tiny",
        num_users=300,
    )
    settings.update(overrides)
    return ExperimentSpec(**settings)


@pytest.fixture(scope="module")
def memory_result():
    clear_memo()
    return run_grid(micro_spec())


class TestExperimentSpec:
    def test_requires_scenarios_and_seeds(self):
        with pytest.raises(ValueError):
            micro_spec(scenarios=())
        with pytest.raises(ValueError):
            micro_spec(seeds=())

    def test_rejects_duplicate_seeds(self):
        with pytest.raises(ValueError, match="unique"):
            micro_spec(seeds=(1, 1))

    def test_rejects_unknown_scenarios(self):
        with pytest.raises(ValueError, match="catalog"):
            micro_spec(scenarios=("no_such_world",))
        with pytest.raises(ValueError, match="catalog"):
            micro_spec(baseline="no_such_world")

    def test_baseline_ordered_first_and_deduplicated(self):
        spec = micro_spec(
            scenarios=("second_wave", "baseline_lockdown",
                       "no_intervention"),
        )
        assert spec.ordered_scenarios == (
            "baseline_lockdown", "second_wave", "no_intervention",
        )

    def test_cell_config_carries_seed_and_scale(self):
        spec = micro_spec(seeds=(1, 2))
        config = spec.cell_config("second_wave", 2)
        assert config.seed == 2
        assert config.num_users == 300


class TestInMemoryGrid:
    def test_runs_every_cell_baseline_included(self, memory_result):
        assert [cell.scenario for cell in memory_result.cells] == [
            "baseline_lockdown", "no_intervention", "second_wave",
        ]
        assert all(cell.seed == 1 for cell in memory_result.cells)
        assert all(not cell.reused for cell in memory_result.cells)
        assert all(
            cell.directory is None for cell in memory_result.cells
        )

    def test_cells_bitwise_reproducible(self, memory_result):
        # A fresh grid over the same spec — with the in-process memo
        # cleared so every cell re-simulates — reproduces every
        # summary value exactly.
        clear_memo()
        again = run_grid(micro_spec())
        for scenario in ("baseline_lockdown", *SCENARIOS):
            assert memory_result.cell(scenario, 1).summary() == \
                again.cell(scenario, 1).summary()

    def test_memo_dedupes_repeated_cells(self, memory_result):
        # The module fixture populated the memo; a second grid over
        # the same spec serves cells from it.
        recorder = telemetry.enable()
        try:
            run_grid(micro_spec())
            snapshot = recorder.snapshot()
        finally:
            telemetry.disable()
        assert snapshot["counters"]["datasets.runcache.hits"] == 3
        assert snapshot["counters"]["experiments.cells_total"] == 3

    def test_mean_summary_averages_seeds(self, memory_result):
        single = memory_result.mean_summary("second_wave")
        cell = memory_result.cell("second_wave", 1).summary()
        assert single == pytest.approx(cell)

    def test_unknown_cell_raises(self, memory_result):
        with pytest.raises(KeyError):
            memory_result.cell("second_wave", 99)
        with pytest.raises(KeyError):
            memory_result.mean_summary("weekend_curfew")

    def test_report_shape(self, memory_result):
        report = memory_result.report()
        assert "Headline deltas vs baseline" in report
        for label, _key in DELTA_METRICS:
            assert label in report
        assert "Weekly variation — national gyration" in report
        assert report.count("second_wave") >= 4

    def test_report_deterministic(self, memory_result):
        assert memory_result.report() == memory_result.report()

    def test_counterfactual_physics(self, memory_result):
        base = memory_result.mean_summary("baseline_lockdown")
        free = memory_result.mean_summary("no_intervention")
        assert free["dl_volume_min_pct"] > base["dl_volume_min_pct"]
        assert free["voice_volume_peak_pct"] < 30.0
        assert base["voice_volume_peak_pct"] > 100.0


class TestPersistentGrid:
    @pytest.fixture(scope="class")
    def workdir(self, tmp_path_factory):
        return tmp_path_factory.mktemp("grid")

    @pytest.fixture(scope="class")
    def cold(self, workdir):
        clear_memo()
        actions = []
        result = run_grid(
            micro_spec(workdir=workdir),
            progress=lambda s, seed, action: actions.append(action),
        )
        return result, actions

    def test_cold_grid_simulates_and_persists(self, cold, workdir):
        result, actions = cold
        assert actions == ["simulated"] * 3
        for cell in result.cells:
            assert cell.directory is not None
            assert (cell.directory / CELL_SIDECAR).is_file()
            sidecar = json.loads(
                (cell.directory / CELL_SIDECAR).read_text()
            )
            assert sidecar["config_digest"] == cell.digest
            assert sidecar["scenario"] == cell.scenario

    def test_warm_grid_reuses_and_matches_bytes(self, cold, workdir):
        result, _ = cold
        cold_report = result.report()
        clear_memo()
        actions = []
        warm = run_grid(
            micro_spec(workdir=workdir),
            progress=lambda s, seed, action: actions.append(action),
        )
        assert actions == ["reused"] * 3
        assert all(cell.reused for cell in warm.cells)
        assert warm.report() == cold_report

    def test_stale_sidecar_rebuilds_the_cell(self, cold, workdir):
        result, _ = cold
        directory = result.cell("second_wave", 1).directory
        sidecar = directory / CELL_SIDECAR
        payload = json.loads(sidecar.read_text())
        payload["config_digest"] = "0" * 64
        sidecar.write_text(json.dumps(payload))
        clear_memo()
        actions = []
        again = run_grid(
            micro_spec(workdir=workdir),
            progress=lambda s, seed, action: actions.append(action),
        )
        assert actions.count("simulated") == 1
        rebuilt = json.loads(sidecar.read_text())
        assert rebuilt["config_digest"] == again.cell(
            "second_wave", 1
        ).digest

    def test_compare_runs_over_cell_directories(self, cold):
        result, _ = cold
        directories = [
            str(result.cell(name, 1).directory)
            for name in ("baseline_lockdown", "no_intervention")
        ]
        report = compare_runs(directories)
        assert "baseline: baseline_lockdown--seed1" in report
        assert report == compare_runs(directories)

    def test_compare_needs_two_runs(self, cold):
        result, _ = cold
        only = [str(result.cells[0].directory)]
        with pytest.raises(ValueError):
            compare_runs(only)


class TestDeltaTable:
    def test_baseline_absolute_others_delta(self):
        metrics = (("metric a", "a"), ("metric b", "b"))
        table = delta_table(
            {
                "base": {"a": 10.0, "b": -5.0},
                "other": {"a": 12.5, "b": -5.0},
            },
            "base",
            metrics=metrics,
        )
        lines = table.splitlines()
        assert "metric a" in lines[2]
        assert "+2.5" in lines[2]
        assert "10.0" in lines[2]
        assert "+0.0" in lines[3]

    def test_missing_baseline_raises(self):
        with pytest.raises(KeyError):
            delta_table({"x": {}}, "base", metrics=())


class TestApiFacade:
    def test_api_experiment_wraps_run_grid(self):
        result = api.experiment(
            ["no_intervention"], seeds=[1], preset="tiny",
            num_users=300,
        )
        assert [cell.scenario for cell in result.cells] == [
            "baseline_lockdown", "no_intervention",
        ]

    def test_api_experiment_validates(self):
        with pytest.raises(ValueError):
            api.experiment([], seeds=[1])
