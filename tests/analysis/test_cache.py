"""Tests for the persistent content-addressed artifact cache.

The cache's contract has three legs: keys are pure functions of
(feed digests, code epoch, params); payloads round-trip *bitwise*
through the NPZ codec; and every way an entry can be wrong — absent,
truncated, bit-flipped, mislabeled — is a silent miss followed by a
recompute, never an error.  These tests drive each leg directly
against an :class:`ArtifactCache` rooted in a temp directory, with no
simulation in the loop.
"""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.analysis.cache import (
    CACHE_SUBDIR,
    CODE_EPOCHS,
    ArtifactCache,
    CacheCodecError,
    _decode,
    _encode,
    artifact_key,
    report_params,
    summary_params,
)
from repro.core.statistics import MobilityDailyMetrics
from repro.frames import Frame

DIGESTS = {
    "radio_kpis.csv": "a" * 64,
    "rat_time.csv": "b" * 64,
    "mobility.npz": "c" * 64,
    "config.pkl": "d" * 64,
}


@pytest.fixture
def store(tmp_path):
    return ArtifactCache(tmp_path / "cache" / "analysis", DIGESTS)


class TestKeys:
    def test_deterministic(self):
        params = {"gyration_mode": "weighted"}
        assert artifact_key("fig3", DIGESTS, params) == artifact_key(
            "fig3", DIGESTS, params
        )

    def test_key_order_does_not_matter(self):
        shuffled = dict(reversed(list(DIGESTS.items())))
        assert artifact_key("fig3", DIGESTS, {}) == artifact_key(
            "fig3", shuffled, {}
        )

    def test_every_input_separates_keys(self):
        base = artifact_key("fig3", DIGESTS, {"gyration_mode": "weighted"})
        assert artifact_key("fig5", DIGESTS, {"gyration_mode": "weighted"}) != base
        assert artifact_key("fig3", DIGESTS, {"gyration_mode": "paper"}) != base
        other_feeds = dict(DIGESTS, **{"mobility.npz": "e" * 64})
        assert artifact_key("fig3", other_feeds, {"gyration_mode": "weighted"}) != base

    def test_epoch_bump_invalidates(self, monkeypatch):
        before = artifact_key("fig3", DIGESTS, {})
        monkeypatch.setitem(CODE_EPOCHS, "fig3", CODE_EPOCHS["fig3"] + 1)
        assert artifact_key("fig3", DIGESTS, {}) != before

    def test_param_helpers_shared_with_cli(self):
        assert summary_params() == {"gyration_mode": "weighted"}
        assert report_params(True) == {
            "full": True, "gyration_mode": "weighted",
        }

    def test_every_study_artifact_has_an_epoch(self):
        for name in ("metrics", "homes", "labeled_kpis", "summary",
                     "report", "rat_share", "cluster_correlations"):
            assert name in CODE_EPOCHS
        for fig in range(2, 13):
            assert f"fig{fig}" in CODE_EPOCHS


class TestCodecRoundTrip:
    """Payloads come back equal — arrays bitwise, dtypes exact."""

    def roundtrip(self, store, payload, artifact="fig9"):
        assert store.put(artifact, {}, payload)
        return store.get(artifact, {})

    def test_arrays_bitwise(self, store):
        payload = {
            "f32": np.linspace(0, 1, 7, dtype=np.float32),
            "f64": np.array([1.5, np.nan, np.inf]),
            "ints": np.arange(5, dtype=np.int16),
            "flags": np.array([True, False]),
        }
        back = self.roundtrip(store, payload)
        for name, array in payload.items():
            assert back[name].dtype == array.dtype
            assert np.array_equal(back[name], array, equal_nan=True)

    def test_scalars_and_containers(self, store):
        payload = {
            "nested": {"pi": 3.5, "label": "uk", "none": None, "yes": True},
            "numbers": [1, 2.5, -3],
            "pair": (np.float64(1.25), np.int32(7)),
            3: "int keys survive",
        }
        back = self.roundtrip(store, payload)
        assert back["nested"] == payload["nested"]
        assert back["numbers"] == [1, 2.5, -3]
        assert isinstance(back["pair"], tuple)
        assert back["pair"][0] == 1.25
        assert back["pair"][1].dtype == np.int32
        assert back[3] == "int keys survive"

    def test_frame(self, store):
        frame = Frame({
            "week": np.arange(4),
            "delta": np.array([0.0, -1.5, 2.25, 0.5]),
            "label": ["a", "b", "c", "d"],
        })
        back = self.roundtrip(store, {"weekly": frame})["weekly"]
        assert back.column_names == frame.column_names
        for name in frame.column_names:
            assert np.array_equal(back[name], frame[name])

    def test_metrics_dataclass(self, store):
        metrics = MobilityDailyMetrics(
            user_ids=np.arange(3),
            entropy=np.random.default_rng(0)
            .random((4, 3)).astype(np.float32),
            gyration_km=np.random.default_rng(1)
            .random((4, 3)).astype(np.float32),
        )
        back = self.roundtrip(store, metrics, "metrics")
        assert isinstance(back, MobilityDailyMetrics)
        assert np.array_equal(back.entropy, metrics.entropy)
        assert np.array_equal(back.gyration_km, metrics.gyration_km)
        assert back.entropy.dtype == np.float32

    def test_unencodable_payload_is_refused_without_writing(self, store):
        assert store.put("fig9", {}, {"handle": object()}) is False
        assert not store.directory.exists()

    def test_encode_rejects_unknown_tree(self):
        with pytest.raises(CacheCodecError):
            _decode({"__kind__": "mystery"}, {})
        with pytest.raises(CacheCodecError):
            _encode(object(), {})


class TestMissesAndCorruption:
    def test_absent_entry_is_a_miss(self, store):
        assert store.get("fig9", {}) is None

    def test_get_or_compute_stores_then_hits(self, store):
        calls = []

        def compute():
            calls.append(1)
            return {"x": np.arange(3)}

        first = store.get_or_compute("fig9", {}, compute)
        second = store.get_or_compute("fig9", {}, compute)
        assert len(calls) == 1
        assert np.array_equal(first["x"], second["x"])

    @pytest.mark.parametrize("damage", [
        lambda path: path.write_bytes(b"\x00" * 32),            # garbage
        lambda path: path.write_bytes(path.read_bytes()[:40]),  # truncated
        lambda path: path.write_bytes(b""),                     # empty
    ])
    def test_corrupt_entry_recomputes_identically(self, store, damage):
        payload = {"x": np.linspace(0, 1, 11)}
        assert store.put("fig9", {}, payload)
        damage(store.entry_path("fig9", {}))

        assert store.get("fig9", {}) is None  # miss, not an error
        back = store.get_or_compute("fig9", {}, lambda: payload)
        assert np.array_equal(back["x"], payload["x"])
        # The corrupt file was atomically replaced by the fresh result.
        assert np.array_equal(store.get("fig9", {})["x"], payload["x"])

    def test_checksum_guards_array_bytes(self, store):
        assert store.put("fig9", {}, {"x": np.arange(64, dtype=np.uint8)})
        path = store.entry_path("fig9", {})
        # Re-save with one array value flipped but the original
        # checksum: a stale-payload entry must fail validation.
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        arrays["a0"] = arrays["a0"].copy()
        arrays["a0"][7] ^= 0xFF
        np.savez(path, **arrays)
        assert store.get("fig9", {}) is None

    def test_entry_for_a_different_artifact_is_rejected(self, store):
        assert store.put("fig9", {}, {"x": 1})
        impostor = store.entry_path("fig10", {})
        impostor.parent.mkdir(parents=True, exist_ok=True)
        store.entry_path("fig9", {}).rename(impostor)
        assert store.get("fig10", {}) is None

    def test_no_temp_files_left_behind(self, store):
        store.put("fig9", {}, {"x": np.arange(8)})
        assert not list(store.directory.glob("*.tmp"))


class TestTelemetryCounters:
    @pytest.fixture(autouse=True)
    def recorder(self):
        telemetry.enable()
        yield
        telemetry.disable()

    def counters(self):
        return telemetry.snapshot()["counters"]

    def test_hits_misses_and_bytes(self, store):
        store.get("fig9", {})
        store.put("fig9", {}, {"x": np.arange(4)})
        store.get("fig9", {})
        counters = self.counters()
        assert counters["cache.misses"] == 1
        assert counters["cache.hits"] == 1
        assert counters["cache.bytes_written"] == (
            store.entry_path("fig9", {}).stat().st_size
        )

    def test_corrupt_entries_counted(self, store):
        store.put("fig9", {}, {"x": np.arange(4)})
        store.entry_path("fig9", {}).write_bytes(b"junk")
        store.get("fig9", {})
        counters = self.counters()
        assert counters["cache.corrupt_entries"] == 1
        assert counters["cache.misses"] == 1


class TestMaintenance:
    def test_info_counts_entries_and_bytes(self, store):
        assert store.info()["entries"] == 0
        store.put("fig9", {}, {"x": np.arange(4)})
        store.put("fig10", {}, {"y": np.arange(6)})
        info = store.info()
        assert info["entries"] == 2
        assert info["bytes"] > 0
        assert info["directory"] == str(store.directory)

    def test_clear_removes_everything(self, store):
        store.put("fig9", {}, {"x": np.arange(4)})
        store.clear()
        assert not store.directory.exists()
        assert store.info()["entries"] == 0
        store.clear()  # idempotent on an absent directory


class TestOpen:
    """Constructors that bind a cache to a run directory."""

    def test_open_reads_manifest_digests(self, tmp_path):
        (tmp_path / "manifest.json").write_text(json.dumps({
            "format_version": 1, "feeds_sha256": DIGESTS,
        }))
        store = ArtifactCache.open(tmp_path)
        assert store is not None
        assert store.feed_digests == DIGESTS
        assert store.directory == tmp_path / CACHE_SUBDIR

    def test_open_without_manifest_is_none(self, tmp_path):
        assert ArtifactCache.open(tmp_path) is None

    def test_open_without_digests_is_none(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"format_version": 1})
        )
        assert ArtifactCache.open(tmp_path) is None

    def test_for_feeds_uses_carried_digests(self, tmp_path):
        class Feeds:
            source_digests = DIGESTS

        store = ArtifactCache.for_feeds(tmp_path, Feeds())
        assert store.feed_digests == DIGESTS

    def test_for_feeds_without_digests_is_none(self, tmp_path):
        class Feeds:
            source_digests = None

        assert ArtifactCache.for_feeds(tmp_path, Feeds()) is None
