"""Process-parallel analysis: plans, pools, fallbacks, and knobs.

:mod:`repro.analysis.parallel` promises that fanning the shard-streaming
kernels across a process pool changes *nothing observable*: metrics,
homes and sessions are bitwise identical to the serial walk for every
worker count, ``REPRO_ANALYSIS_SERIAL=1`` forces the sequential oracle,
and a pool that cannot start degrades to in-process execution of the
identical task functions.  This module pins those promises plus the
plumbing around them — worker resolution, the CLI ``--workers`` flag,
and the ``analysis.*`` telemetry counters.
"""

import datetime as dt
import io

import numpy as np
import pytest

from repro import api, telemetry
from repro.analysis import parallel
from repro.cli import main
from repro.core.home import detect_homes, night_win_counts
from repro.core.sessionize import sessionize_events
from repro.core.statistics import compute_daily_metrics
from repro.io import load_feeds, save_feeds
from repro.simulation.clock import StudyCalendar
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator

#: Nine ISO weeks (6-14) so the lockdown summary numbers exist.
_CALENDAR = StudyCalendar(first_day=dt.date(2020, 2, 3), num_days=63)


def _config(shards: int = 2) -> SimulationConfig:
    return (
        SimulationConfig.tiny(seed=31)
        .with_overrides(
            num_users=220,
            target_site_count=40,
            calendar=_CALENDAR,
            emit_signaling=True,
        )
        .with_parallelism(shards, workers=1)
    )


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    target = tmp_path_factory.mktemp("parallel") / "run"
    save_feeds(Simulator(_config()).run(), target)
    return target


@pytest.fixture
def lazy(run_dir):
    return load_feeds(run_dir, lazy=True)


@pytest.fixture
def recorder():
    recorder = telemetry.enable()
    yield recorder
    telemetry.disable()


def _counters() -> dict:
    return telemetry.snapshot()["counters"]


class TestPlanFor:
    def test_committed_lazy_run_gets_a_plan(self, lazy):
        plan = parallel.plan_for(lazy)
        assert plan is not None
        assert plan.num_shards == 2
        assert plan.num_days == 63
        assert plan.has_events

    def test_eager_feeds_have_no_plan(self, run_dir):
        assert parallel.plan_for(load_feeds(run_dir)) is None

    def test_serial_env_disables_planning(self, lazy, monkeypatch):
        monkeypatch.setenv(parallel.ENV_SERIAL, "1")
        assert parallel.use_serial()
        assert parallel.plan_for(lazy) is None


class TestResolveWorkers:
    @pytest.mark.parametrize("value", [None, 0, "auto"])
    def test_auto_values_resolve_to_cpu_count(self, value):
        import os

        assert parallel.resolve_workers(value) == max(
            1, os.cpu_count() or 1
        )

    def test_explicit_count_passes_through(self):
        assert parallel.resolve_workers(3) == 3

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            parallel.resolve_workers(-2)


class TestBitwiseIdentity:
    """The core contract: worker count never changes a single byte."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_metrics_match_serial(self, lazy, workers):
        serial = compute_daily_metrics(lazy)
        fanned = compute_daily_metrics(lazy, workers=workers)
        assert np.array_equal(serial.entropy, fanned.entropy)
        assert np.array_equal(serial.gyration_km, fanned.gyration_km)
        assert np.array_equal(serial.user_ids, fanned.user_ids)

    def test_homes_match_serial(self, lazy):
        serial = detect_homes(lazy, min_nights=3)
        fanned = detect_homes(lazy, min_nights=3, workers=2)
        assert np.array_equal(serial.home_site, fanned.home_site)
        assert np.array_equal(
            serial.nights_observed, fanned.nights_observed
        )

    def test_serial_env_forces_sequential_path(self, lazy, monkeypatch):
        baseline = compute_daily_metrics(lazy, workers=2)
        monkeypatch.setenv(parallel.ENV_SERIAL, "1")
        forced = compute_daily_metrics(lazy, workers=2)
        assert np.array_equal(baseline.entropy, forced.entropy)
        assert np.array_equal(baseline.gyration_km, forced.gyration_km)

    def test_sessionized_events_match_eager(self, lazy):
        plan = parallel.plan_for(lazy)
        day = 3
        fanned = parallel.parallel_sessionize_events(
            lazy, plan, day, workers=2
        )
        eager = sessionize_events(lazy.signaling[day])
        for column in ("user_id", "site_id", "dwell_s"):
            assert np.array_equal(fanned[column], eager[column])


class TestPoolDegradation:
    def test_lost_pool_falls_back_inline_bitwise(self, lazy, monkeypatch):
        def explode(*args, **kwargs):
            raise parallel._PoolLost("simulated pool death")

        serial = compute_daily_metrics(lazy)
        monkeypatch.setattr(parallel, "_map_pool", explode)
        fanned = compute_daily_metrics(lazy, workers=4)
        assert np.array_equal(serial.entropy, fanned.entropy)
        assert np.array_equal(serial.gyration_km, fanned.gyration_km)

    def test_degradation_is_counted(self, lazy, monkeypatch, recorder):
        monkeypatch.setattr(
            parallel,
            "_map_pool",
            lambda *a, **k: (_ for _ in ()).throw(
                parallel._PoolLost("dead")
            ),
        )
        compute_daily_metrics(lazy, workers=4)
        counters = _counters()
        assert counters.get("analysis.pool_degraded", 0) >= 1
        assert counters.get("analysis.worker_merge", 0) >= 2


class TestTelemetry:
    def test_fanout_counters(self, lazy, recorder):
        compute_daily_metrics(lazy, workers=2)
        counters = _counters()
        assert counters.get("analysis.shards_dispatched", 0) == 2
        assert counters.get("analysis.worker_merge", 0) == 2

    def test_night_counts_dispatch(self, lazy, recorder):
        window = np.arange(5)
        serial = night_win_counts(lazy, window)
        fanned = night_win_counts(lazy, window, workers=2)
        assert np.array_equal(serial, fanned)
        assert _counters().get("analysis.shards_dispatched", 0) == 2


class TestApiAndStudy:
    def test_run_study_accepts_workers(self, run_dir):
        run = api.Run.open(run_dir, lazy=True)
        serial = run.study(cache=False).summary()
        fanned = run.study(cache=False, workers=2).summary()
        assert serial == fanned


class TestCli:
    def test_workers_flag_accepted(self, run_dir):
        out = io.StringIO()
        assert main(
            ["analyze", str(run_dir), "--workers", "2"], out=out
        ) == 0
        assert "entropy" in out.getvalue().lower() or out.getvalue()

    def test_bad_workers_value_rejected(self, run_dir):
        out = io.StringIO()
        assert main(
            ["analyze", str(run_dir), "--workers", "nope"], out=out
        ) == 2

    def test_workers_auto_is_default(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["analyze", "somewhere"])
        assert args.workers == "auto"
