"""Merge associativity of the shard-partitioned analysis kernels.

The process-parallel fan-out (:mod:`repro.analysis.parallel`) rests on
one algebraic fact: per-shard partials scatter into *disjoint*
population rows, so the merge is associative and commutative — the
order workers finish in can never change a byte.  This module pins
that fact directly, property-based where the order space is large:

- night-win-count partials and daily-metric blocks merged under any
  shard permutation equal the serial whole-feed oracle bitwise;
- night counts over disjoint day windows simply *add* (the live-run
  incremental identity);
- and the full ``(shards x workers)`` grid of public entry points
  agrees with the ``REPRO_ANALYSIS_SERIAL=1`` oracle.
"""

import datetime as dt

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import parallel
from repro.core.home import (
    detect_homes,
    finalize_homes,
    night_win_counts,
    shard_night_win_counts,
)
from repro.core.statistics import compute_daily_metrics, shard_metric_blocks
from repro.io import load_feeds, save_feeds
from repro.simulation.clock import StudyCalendar
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator

SHARD_COUNTS = (1, 2, 4)
WORKER_COUNTS = (1, 2, 4)

_CALENDAR = StudyCalendar(first_day=dt.date(2020, 2, 24), num_days=14)


def _config(shards: int) -> SimulationConfig:
    return (
        SimulationConfig.tiny(seed=47)
        .with_overrides(
            num_users=200,
            target_site_count=40,
            calendar=_CALENDAR,
        )
        .with_parallelism(shards, workers=1)
    )


@pytest.fixture(scope="module")
def run_dirs(tmp_path_factory):
    base = tmp_path_factory.mktemp("assoc")
    dirs = {}
    for shards in SHARD_COUNTS:
        dirs[shards] = base / f"run-k{shards}"
        save_feeds(Simulator(_config(shards)).run(), dirs[shards])
    return dirs


@pytest.fixture(scope="module")
def lazy4(run_dirs):
    return load_feeds(run_dirs[4], lazy=True)


_WINDOW = np.arange(10)


class TestShardOrderIndependence:
    """Scatter the real per-shard partials in every order."""

    @settings(
        max_examples=25, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(order=st.permutations(range(4)))
    def test_night_counts_merge_any_order(self, lazy4, order):
        mobility = lazy4.mobility
        oracle = night_win_counts(lazy4, _WINDOW)
        merged = np.zeros_like(oracle)
        for index in order:
            shard = mobility.shards[index]
            if shard.num_rows:
                merged[shard.rows] = shard_night_win_counts(
                    shard, _WINDOW
                )
        assert np.array_equal(merged, oracle)

    @settings(
        max_examples=10, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(order=st.permutations(range(4)))
    def test_metric_blocks_merge_any_order(self, lazy4, order):
        mobility = lazy4.mobility
        site_lats, site_lons = lazy4.site_locations()
        oracle = compute_daily_metrics(lazy4)
        entropy = np.zeros_like(oracle.entropy)
        gyration = np.zeros_like(oracle.gyration_km)
        for index in order:
            shard = mobility.shards[index]
            if not shard.num_rows:
                continue
            entropy_block, gyration_block = shard_metric_blocks(
                shard,
                site_lats,
                site_lons,
                gyration_mode="weighted",
                top_towers=20,
                batch_days=None,
                day_lo=0,
                day_hi=mobility.num_days,
            )
            entropy[:, shard.rows] = entropy_block
            gyration[:, shard.rows] = gyration_block
        assert np.array_equal(entropy, oracle.entropy)
        assert np.array_equal(gyration, oracle.gyration_km)


class TestWindowAdditivity:
    """Counts over disjoint day windows add — the live-run identity."""

    @settings(
        max_examples=20, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(split=st.integers(min_value=1, max_value=9))
    def test_disjoint_windows_add(self, lazy4, split):
        first = night_win_counts(lazy4, _WINDOW[:split])
        second = night_win_counts(lazy4, _WINDOW[split:])
        whole = night_win_counts(lazy4, _WINDOW)
        assert np.array_equal(first + second, whole)

    def test_summed_partials_finalize_identically(self, lazy4):
        split = 4
        summed = night_win_counts(lazy4, _WINDOW[:split])
        summed = summed + night_win_counts(lazy4, _WINDOW[split:])
        direct = detect_homes(lazy4, min_nights=3, window_days=_WINDOW)
        refolded = finalize_homes(lazy4, summed, 3)
        assert np.array_equal(direct.home_site, refolded.home_site)
        assert np.array_equal(
            direct.nights_observed, refolded.nights_observed
        )


class TestGridVsSerialOracle:
    """Every (shards, workers) combo equals REPRO_ANALYSIS_SERIAL=1."""

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_metrics_and_homes(
        self, run_dirs, shards, workers, monkeypatch
    ):
        lazy = load_feeds(run_dirs[shards], lazy=True)
        monkeypatch.setenv(parallel.ENV_SERIAL, "1")
        serial_metrics = compute_daily_metrics(lazy, workers=workers)
        serial_homes = detect_homes(lazy, min_nights=3, workers=workers)
        monkeypatch.delenv(parallel.ENV_SERIAL)
        fanned_metrics = compute_daily_metrics(lazy, workers=workers)
        fanned_homes = detect_homes(lazy, min_nights=3, workers=workers)
        assert np.array_equal(
            serial_metrics.entropy, fanned_metrics.entropy
        )
        assert np.array_equal(
            serial_metrics.gyration_km, fanned_metrics.gyration_km
        )
        assert np.array_equal(
            serial_homes.home_site, fanned_homes.home_site
        )
        assert np.array_equal(
            serial_homes.nights_observed, fanned_homes.nights_observed
        )

    def test_shard_count_does_not_change_results(self, run_dirs):
        # The same world saved at three layouts: results must agree
        # across shard counts too, not just worker counts.
        baselines = {}
        for shards in SHARD_COUNTS:
            lazy = load_feeds(run_dirs[shards], lazy=True)
            metrics = compute_daily_metrics(lazy, workers=2)
            baselines[shards] = (metrics.entropy, metrics.gyration_km)
        first = baselines[SHARD_COUNTS[0]]
        for shards in SHARD_COUNTS[1:]:
            assert np.array_equal(baselines[shards][0], first[0])
            assert np.array_equal(baselines[shards][1], first[1])
