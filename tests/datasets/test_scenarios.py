"""Tests for the canned scenario builders (at tiny scale)."""

import numpy as np
import pytest

from repro.core import CovidImpactStudy
from repro.datasets.scenarios import no_lockdown_config
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator


@pytest.fixture(scope="module")
def factual():
    return Simulator(SimulationConfig.tiny(seed=31)).run()


@pytest.fixture(scope="module")
def counterfactual():
    config = no_lockdown_config(SimulationConfig.tiny(seed=31))
    return Simulator(config).run()


class TestNoLockdownCounterfactual:
    def test_mobility_stays_flat(self, counterfactual):
        study = CovidImpactStudy(counterfactual)
        series = study.fig3()["gyration"]
        weeks_of_day = counterfactual.calendar.weeks[series.x]
        # Weekly means stay near baseline (daily values still show the
        # ordinary weekday/weekend seasonality).
        weekly = [
            series.values["UK"][weeks_of_day == week].mean()
            for week in range(10, 20)
        ]
        assert min(weekly) > -10.0
        assert max(weekly) < 10.0

    def test_factual_mobility_drops(self, factual):
        study = CovidImpactStudy(factual)
        gyration = study.fig3()["gyration"].values["UK"]
        assert gyration.min() < -35.0

    def test_no_voice_surge(self, counterfactual):
        study = CovidImpactStudy(counterfactual)
        voice = study.fig9()["voice_volume_mb"]
        assert voice.maximum("UK")[1] < 30.0

    def test_no_interconnect_incident(self, counterfactual):
        assert counterfactual.interconnect_upgrade_day is None

    def test_dl_volume_does_not_collapse(self, counterfactual):
        study = CovidImpactStudy(counterfactual)
        dl = study.fig8()["dl_volume_mb"]
        assert dl.minimum("UK")[1] > -12.0


class TestNoOpsResponseAblation:
    def test_loss_never_recovers(self):
        config = SimulationConfig.tiny(seed=31).with_overrides(
            interconnect_detection_days=10_000
        )
        feeds = Simulator(config).run()
        assert feeds.interconnect_upgrade_day is None
        study = CovidImpactStudy(feeds)
        loss = study.fig9()["voice_dl_loss_rate"]
        # Without the capacity upgrade, loss stays elevated while the
        # voice surge lasts.
        late = loss.values["UK"][loss.weeks >= 14]
        assert late.mean() > 50.0

    def test_ops_response_restores_loss(self, factual):
        study = CovidImpactStudy(factual)
        loss = study.fig9()["voice_dl_loss_rate"]
        late = loss.values["UK"][loss.weeks >= 14]
        assert late.mean() < 20.0


class TestPresets:
    def test_tiny_preset_structure(self, factual):
        assert factual.num_users > 1000
        assert factual.topology.num_sites > 100
        assert len(factual.radio_kpis) > 0

    def test_config_attached(self, factual):
        assert isinstance(factual.config, SimulationConfig)

    def test_with_overrides(self):
        config = SimulationConfig.tiny().with_overrides(seed=99)
        assert config.seed == 99
        assert config.num_users == SimulationConfig.tiny().num_users

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(num_users=0)
        with pytest.raises(ValueError):
            SimulationConfig(target_site_count=0)


class TestBuilderFunctions:
    def test_uk_tiny_builder(self):
        from repro.datasets import uk_tiny

        feeds = uk_tiny(seed=17)
        assert feeds.num_users > 1000
        assert feeds.config.seed == 17

    def test_london_focus_builder(self):
        from repro.datasets import london_focus

        feeds = london_focus(seed=17, num_users=1600)
        assert feeds.config.num_users == 1600
        assert feeds.config.target_site_count >= 100

    def test_counterfactual_builders_exposed(self):
        from repro import datasets

        for name in (
            "uk_default", "uk_small", "uk_tiny", "london_focus",
            "counterfactual_no_lockdown", "counterfactual_no_ops_response",
        ):
            assert callable(getattr(datasets, name))
