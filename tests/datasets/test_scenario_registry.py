"""Tests for the declarative scenario catalog and its digests."""

import datetime as dt

import pytest

from repro.datasets import (
    PhaseSpec,
    ScenarioSpec,
    config_digest,
    get_scenario,
    register_scenario,
    scenario_config,
    scenario_feeds,
    scenario_names,
)
from repro.datasets.runcache import clear_memo, memo_info
from repro.datasets.scenarios import _REGISTRY
from repro.mobility.pandemic import Phase
from repro.simulation.config import SimulationConfig

EXPECTED_CATALOG = (
    "baseline_lockdown",
    "mass_event_spike",
    "no_intervention",
    "no_ops_response",
    "regional_tiers",
    "school_closures_only",
    "second_wave",
    "weekend_curfew",
)


class TestCatalog:
    def test_catalog_names(self):
        assert scenario_names() == EXPECTED_CATALOG

    def test_every_entry_has_description(self):
        for name in scenario_names():
            assert get_scenario(name).description

    def test_unknown_scenario_names_the_catalog(self):
        with pytest.raises(KeyError, match="baseline_lockdown"):
            get_scenario("nope")

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(get_scenario("second_wave"))

    def test_register_custom_entry(self):
        spec = ScenarioSpec(
            name="test_only_entry",
            description="registered by the test suite",
            phases=(PhaseSpec(dt.date(2020, 3, 2), "lockdown", 0.8),),
        )
        try:
            register_scenario(spec)
            assert "test_only_entry" in scenario_names()
            config = scenario_config("test_only_entry", preset="tiny")
            assert config.timeline.restriction_level(
                dt.date(2020, 4, 1)
            ) == 0.8
        finally:
            _REGISTRY.pop("test_only_entry", None)


class TestDigests:
    def test_digest_stable_across_calls(self):
        for name in scenario_names():
            first = config_digest(
                scenario_config(name, preset="tiny", seed=3)
            )
            second = config_digest(
                scenario_config(name, preset="tiny", seed=3)
            )
            assert first == second, name

    def test_digests_distinct_across_scenarios(self):
        digests = {
            config_digest(scenario_config(name, preset="tiny"))
            for name in scenario_names()
        }
        assert len(digests) == len(scenario_names())

    def test_digest_sensitive_to_seed_and_scale(self):
        base = config_digest(scenario_config("second_wave", preset="tiny"))
        assert base != config_digest(
            scenario_config("second_wave", preset="tiny", seed=1)
        )
        assert base != config_digest(
            scenario_config("second_wave", preset="tiny", num_users=500)
        )

    def test_digest_sensitive_to_phase_level(self):
        def spec_with(level):
            return ScenarioSpec(
                name="x", description="x",
                phases=(PhaseSpec(dt.date(2020, 3, 23), "lockdown", level),),
            )

        base = SimulationConfig.tiny()
        assert config_digest(spec_with(1.0).compile(base)) != config_digest(
            spec_with(0.9).compile(base)
        )


class TestSpecSemantics:
    def test_unknown_phase_label_rejected(self):
        with pytest.raises(ValueError):
            PhaseSpec(dt.date(2020, 3, 2), "armageddon", 1.0)

    def test_out_of_order_phases_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="x", description="x",
                phases=(
                    PhaseSpec(dt.date(2020, 3, 23), "lockdown", 1.0),
                    PhaseSpec(dt.date(2020, 3, 2), "outbreak", 0.0),
                ),
            ).timeline()

    def test_empty_phases_keep_real_timeline(self):
        config = scenario_config("baseline_lockdown", preset="tiny")
        assert config.timeline is None  # the calibrated PandemicTimeline

    def test_no_intervention_is_flat(self):
        config = scenario_config("no_intervention", preset="tiny")
        for day in (dt.date(2020, 2, 10), dt.date(2020, 4, 1)):
            assert config.timeline.restriction_level(day) == 0.0

    def test_weekend_curfew_levels(self):
        timeline = scenario_config(
            "weekend_curfew", preset="tiny"
        ).timeline
        friday, saturday = dt.date(2020, 3, 27), dt.date(2020, 3, 28)
        assert timeline.restriction_level(friday) == 0.40
        assert timeline.restriction_level(saturday) == 0.95

    def test_regional_tiers_multipliers(self):
        timeline = scenario_config(
            "regional_tiers", preset="tiny"
        ).timeline
        day = dt.date(2020, 4, 1)
        assert timeline.regional_restriction("London", day) == 1.0
        assert timeline.regional_restriction("Scotland", day) == 0.6
        assert timeline.regional_restriction(
            "South West", day
        ) == pytest.approx(0.55)

    def test_school_closures_never_locks_down(self):
        timeline = scenario_config(
            "school_closures_only", preset="tiny"
        ).timeline
        for offset in range(0, 60):
            day = dt.date(2020, 3, 2) + dt.timedelta(days=offset)
            assert timeline.phase(day) != Phase.LOCKDOWN

    def test_second_wave_relocks(self):
        timeline = scenario_config("second_wave", preset="tiny").timeline
        assert timeline.restriction_level(dt.date(2020, 4, 22)) == 0.30
        assert timeline.restriction_level(dt.date(2020, 4, 28)) == 0.95
        assert timeline.phase(dt.date(2020, 4, 28)) == Phase.LOCKDOWN

    def test_no_ops_response_override(self):
        config = scenario_config("no_ops_response", preset="tiny")
        assert config.interconnect_detection_days == 10_000

    def test_decay_fades_within_a_window(self):
        timeline = scenario_config(
            "school_closures_only", preset="tiny"
        ).timeline
        early = timeline.restriction_level(dt.date(2020, 3, 21))
        late = timeline.restriction_level(dt.date(2020, 4, 20))
        assert late < early


class TestRunMemo:
    def test_scenario_feeds_memoized(self):
        clear_memo()
        first = scenario_feeds(
            "no_intervention", preset="tiny", num_users=300, seed=5
        )
        second = scenario_feeds(
            "no_intervention", preset="tiny", num_users=300, seed=5
        )
        assert first is second  # served from the in-process memo
        assert memo_info()["entries"] >= 1

    def test_classic_builders_share_the_memo(self):
        from repro.datasets import uk_tiny

        clear_memo()
        first = uk_tiny(seed=23)
        second = uk_tiny(seed=23)
        assert first is second
