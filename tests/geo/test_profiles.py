"""Tests for profile mixes and geography internals."""

import numpy as np
import pytest

from repro.geo import OacCluster, build_uk_geography
from repro.geo.build import _PROFILE_MIXES, DEFAULT_COUNTIES


class TestProfileMixes:
    def test_all_profiles_used_by_counties(self):
        used = {county.profile for county in DEFAULT_COUNTIES}
        assert used == set(_PROFILE_MIXES)

    def test_mix_weights_positive(self):
        for profile, mix in _PROFILE_MIXES.items():
            assert all(weight > 0 for weight in mix.values()), profile

    def test_unpinned_districts_respect_profile(self):
        geography = build_uk_geography(seed=13)
        pinned_areas = {
            (county.name, area.code)
            for county in DEFAULT_COUNTIES
            for area in county.areas
            if area.oac is not None
        }
        spec_by_name = {county.name: county for county in DEFAULT_COUNTIES}
        for district in geography.districts:
            if (district.county, district.area_code) in pinned_areas:
                continue
            profile = spec_by_name[district.county].profile
            assert district.oac in _PROFILE_MIXES[profile], (
                district.code, profile,
            )

    def test_inner_london_three_clusters_only(self):
        geography = build_uk_geography(seed=13)
        clusters = {
            district.oac
            for district in geography.districts_in_county("Inner London")
        }
        assert clusters <= {
            OacCluster.COSMOPOLITANS,
            OacCluster.ETHNICITY_CENTRAL,
            OacCluster.MULTICULTURAL_METROPOLITANS,
        }

    def test_nw_london_pinned_multicultural(self):
        geography = build_uk_geography(seed=13)
        nw = [
            district
            for district in geography.districts_in_county("Inner London")
            if district.area_code == "NW"
        ]
        assert nw
        assert all(
            district.oac is OacCluster.MULTICULTURAL_METROPOLITANS
            for district in nw
        )


class TestCountySpecs:
    def test_county_names_unique(self):
        names = [county.name for county in DEFAULT_COUNTIES]
        assert len(names) == len(set(names))

    def test_positive_populations_and_radii(self):
        for county in DEFAULT_COUNTIES:
            assert county.population > 0
            assert county.radius_km > 0

    def test_uk_bounding_box(self):
        for county in DEFAULT_COUNTIES:
            assert 49.5 < county.center.lat < 59.0
            assert -6.5 < county.center.lon < 2.0

    def test_every_region_has_a_county(self):
        regions = {county.region for county in DEFAULT_COUNTIES}
        assert {"London", "North West", "West Midlands",
                "Yorkshire and the Humber", "South East",
                "Scotland", "Wales"} <= regions

    def test_attraction_ratio_ec_vs_residential(self):
        inner = next(
            county for county in DEFAULT_COUNTIES
            if county.name == "Inner London"
        )
        by_code = {area.code: area for area in inner.areas}
        assert by_code["EC"].attraction > by_code["SE"].attraction * 10
