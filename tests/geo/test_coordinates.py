"""Unit tests for coordinate helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import LatLon, haversine_km, pairwise_distance_km, weighted_centroid
from repro.geo.coordinates import scatter_around

uk_lats = st.floats(min_value=49.5, max_value=59.0)
uk_lons = st.floats(min_value=-8.0, max_value=2.0)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(51.5, -0.12, 51.5, -0.12) == pytest.approx(0.0)

    def test_london_manchester(self):
        # Real-world distance is roughly 262 km.
        distance = haversine_km(51.512, -0.118, 53.48, -2.24)
        assert 250 < distance < 275

    def test_vectorized_broadcast(self):
        lats = np.array([51.0, 52.0, 53.0])
        out = haversine_km(lats, 0.0, 51.0, 0.0)
        assert out.shape == (3,)
        assert out[0] == pytest.approx(0.0)
        assert out[1] > 100

    def test_one_degree_latitude_is_about_111km(self):
        assert haversine_km(51.0, 0.0, 52.0, 0.0) == pytest.approx(111.2, rel=0.01)

    @given(uk_lats, uk_lons, uk_lats, uk_lons)
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, lat1, lon1, lat2, lon2):
        forward = haversine_km(lat1, lon1, lat2, lon2)
        backward = haversine_km(lat2, lon2, lat1, lon1)
        assert forward == pytest.approx(backward, abs=1e-9)

    @given(uk_lats, uk_lons, uk_lats, uk_lons, uk_lats, uk_lons)
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality(self, lat1, lon1, lat2, lon2, lat3, lon3):
        ab = haversine_km(lat1, lon1, lat2, lon2)
        bc = haversine_km(lat2, lon2, lat3, lon3)
        ac = haversine_km(lat1, lon1, lat3, lon3)
        assert ac <= ab + bc + 1e-6


class TestPairwise:
    def test_matrix_shape_and_diagonal(self):
        lats = np.array([51.0, 52.0, 53.0])
        lons = np.array([0.0, -1.0, -2.0])
        matrix = pairwise_distance_km(lats, lons)
        assert matrix.shape == (3, 3)
        assert np.allclose(np.diag(matrix), 0.0)
        assert np.allclose(matrix, matrix.T)


class TestCentroid:
    def test_equal_weights_is_mean(self):
        centroid = weighted_centroid(
            np.array([50.0, 52.0]), np.array([0.0, 2.0]), np.array([1.0, 1.0])
        )
        assert centroid == pytest.approx((51.0, 1.0))

    def test_weights_shift_centroid(self):
        centroid = weighted_centroid(
            np.array([50.0, 52.0]), np.array([0.0, 0.0]), np.array([3.0, 1.0])
        )
        assert centroid.lat == pytest.approx(50.5)

    def test_zero_weights_raise(self):
        with pytest.raises(ValueError):
            weighted_centroid(
                np.array([50.0]), np.array([0.0]), np.array([0.0])
            )


class TestScatter:
    def test_count_and_locality(self):
        rng = np.random.default_rng(1)
        lats, lons = scatter_around(LatLon(51.5, -0.1), 10.0, 500, rng)
        assert lats.shape == (500,)
        distances = haversine_km(lats, lons, 51.5, -0.1)
        # ~95% of gaussian mass within 2 sigma = radius.
        assert np.mean(distances < 10.0) > 0.85

    def test_concentration_tightens(self):
        rng = np.random.default_rng(2)
        loose_lats, loose_lons = scatter_around(
            LatLon(51.5, -0.1), 10.0, 400, rng, concentration=1.0
        )
        tight_lats, tight_lons = scatter_around(
            LatLon(51.5, -0.1), 10.0, 400, rng, concentration=4.0
        )
        loose = haversine_km(loose_lats, loose_lons, 51.5, -0.1).mean()
        tight = haversine_km(tight_lats, tight_lons, 51.5, -0.1).mean()
        assert tight < loose

    def test_negative_count_raises(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            scatter_around(LatLon(51.5, -0.1), 10.0, -1, rng)
