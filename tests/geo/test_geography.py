"""Unit tests for the synthetic UK geography builder."""

import numpy as np
import pytest

from repro.geo import (
    OacCluster,
    PostcodeLookup,
    build_uk_geography,
    haversine_km,
    oac_table,
)
from repro.geo.build import DEFAULT_COUNTIES, STUDY_REGIONS
from repro.frames import Frame


@pytest.fixture(scope="module")
def geography():
    return build_uk_geography(seed=42)


class TestOacCatalog:
    def test_eight_supergroups(self):
        assert len(oac_table()) == 8

    def test_table_matches_paper_names(self):
        names = {name for name, _ in oac_table()}
        assert "Rural Residents" in names
        assert "Cosmopolitans" in names
        assert "Ethnicity Central" in names
        assert "Hard-pressed Living" in names


class TestGeographyStructure:
    def test_study_regions_present(self, geography):
        for region in STUDY_REGIONS:
            assert region in geography.county_names

    def test_relocation_counties_present(self, geography):
        for county in ("Hampshire", "Kent", "East Sussex"):
            assert county in geography.county_names

    def test_district_codes_unique(self, geography):
        codes = [d.code for d in geography.districts]
        assert len(codes) == len(set(codes))

    def test_inner_london_has_central_districts(self, geography):
        codes = {d.code for d in geography.districts_in_county("Inner London")}
        assert "EC1" in codes
        assert "WC1" in codes
        assert "N1" in codes
        assert "SW1" in codes

    def test_district_lookup(self, geography):
        district = geography.district("EC1")
        assert district.county == "Inner London"
        assert district.region == "London"

    def test_unknown_district_raises(self, geography):
        with pytest.raises(KeyError):
            geography.district("ZZ9")

    def test_unknown_county_raises(self, geography):
        with pytest.raises(KeyError):
            geography.county("Atlantis")

    def test_district_index(self, geography):
        index = geography.district_index("EC1")
        assert geography.districts[index].code == "EC1"
        with pytest.raises(KeyError):
            geography.district_index("ZZ9")

    def test_districts_within_county_radius(self, geography):
        for county in geography.counties:
            for district in geography.districts_in_county(county.name):
                distance = haversine_km(
                    district.lat, district.lon,
                    county.center.lat, county.center.lon,
                )
                assert distance < county.radius_km * 2.5

    def test_deterministic_given_seed(self):
        first = build_uk_geography(seed=7)
        second = build_uk_geography(seed=7)
        assert [d.code for d in first.districts] == [
            d.code for d in second.districts
        ]
        assert [d.residents for d in first.districts] == [
            d.residents for d in second.districts
        ]

    def test_different_seeds_differ(self):
        first = build_uk_geography(seed=1)
        second = build_uk_geography(seed=2)
        assert [d.residents for d in first.districts] != [
            d.residents for d in second.districts
        ]


class TestEngineeredContrasts:
    def test_ec_wc_have_few_residents_high_attraction(self, geography):
        inner = geography.districts_in_county("Inner London")
        central = [d for d in inner if d.area_code in ("EC", "WC")]
        residential = [d for d in inner if d.area_code in ("SW", "SE")]
        assert central and residential
        central_residents = np.mean([d.residents for d in central])
        residential_residents = np.mean([d.residents for d in residential])
        assert central_residents < residential_residents / 5
        central_ratio = np.mean(
            [d.daytime_attraction / max(d.residents, 1) for d in central]
        )
        residential_ratio = np.mean(
            [d.daytime_attraction / max(d.residents, 1) for d in residential]
        )
        assert central_ratio > residential_ratio * 5

    def test_inner_london_oac_mix(self, geography):
        inner = geography.districts_in_county("Inner London")
        clusters = {d.oac for d in inner}
        assert OacCluster.COSMOPOLITANS in clusters
        assert OacCluster.ETHNICITY_CENTRAL in clusters
        assert OacCluster.RURAL_RESIDENTS not in clusters

    def test_rural_counties_mostly_rural(self, geography):
        rural = geography.districts_in_county("Devon")
        rural += geography.districts_in_county("Cornwall")
        rural += geography.districts_in_county("Norfolk")
        share = np.mean(
            [d.oac is OacCluster.RURAL_RESIDENTS for d in rural]
        )
        assert share > 0.3

    def test_population_scale(self):
        full = build_uk_geography(seed=5, population_scale=1.0)
        half = build_uk_geography(seed=5, population_scale=0.5)
        assert half.total_residents == pytest.approx(
            full.total_residents * 0.5, rel=0.01
        )

    def test_lad_population_partitions_total(self, geography):
        assert sum(geography.lad_population.values()) == geography.total_residents

    def test_county_population_roughly_spec(self, geography):
        for spec in DEFAULT_COUNTIES:
            built = sum(
                d.residents for d in geography.districts_in_county(spec.name)
            )
            assert built == pytest.approx(spec.population, rel=0.02)


class TestPostcodeLookup:
    def test_one_row_per_district(self, geography):
        lookup = PostcodeLookup(geography)
        assert len(lookup) == len(geography.districts)

    def test_attach_joins_labels(self, geography):
        lookup = PostcodeLookup(geography)
        feed = Frame({"postcode": ["EC1", "SW1"], "volume": [1.0, 2.0]})
        out = lookup.attach(feed)
        labels = dict(zip(out["postcode"], out["county"]))
        assert labels["EC1"] == "Inner London"

    def test_attach_drops_unknown_codes(self, geography):
        lookup = PostcodeLookup(geography)
        feed = Frame({"postcode": ["EC1", "ZZ9"], "volume": [1.0, 2.0]})
        assert len(lookup.attach(feed)) == 1

    def test_attach_custom_key(self, geography):
        lookup = PostcodeLookup(geography)
        feed = Frame({"home": ["EC1"], "users": [5]})
        out = lookup.attach(feed, on="home")
        assert out["county"].tolist() == ["Inner London"]

    def test_scalar_helpers(self, geography):
        lookup = PostcodeLookup(geography)
        assert lookup.county_of("EC1") == "Inner London"
        assert lookup.region_of("EC1") == "London"
        assert lookup.oac_of("EC1") is OacCluster.COSMOPOLITANS
        assert lookup.lad_of("EC1").endswith("EC")
