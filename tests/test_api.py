"""Tests for the :mod:`repro.api` facade.

The facade's promise is one front door for the whole lifecycle —
simulate, save, load, resume, analyze — with crash-safety on by
default and precise errors from broken run directories.  These tests
drive each lifecycle edge through :class:`repro.api.Run` and check the
handle stays consistent with the lower layers it wraps.
"""

import datetime as dt

import numpy as np
import pytest

from repro import api
from repro.io import RunStoreError
from repro.simulation.checkpoint import CheckpointStore
from repro.simulation.clock import StudyCalendar
from repro.simulation.config import SimulationConfig
from repro.simulation.faults import RecoverySettings, ShardExecutionError

_CALENDAR = StudyCalendar(first_day=dt.date(2020, 2, 24), num_days=14)


def _config(**overrides):
    return SimulationConfig.tiny(seed=11).with_overrides(
        num_users=160,
        target_site_count=40,
        calendar=_CALENDAR,
        recovery=RecoverySettings(max_retries=0),
        **overrides,
    )


class TestSimulate:
    def test_in_memory(self):
        run = api.simulate(_config())
        assert run.directory is None
        assert run.config.seed == 11
        assert run.feeds.calendar.num_days == 14

    def test_persisted(self, tmp_path):
        rundir = tmp_path / "run"
        run = api.simulate(_config(), out=rundir)
        assert run.directory == rundir
        assert (rundir / "manifest.json").exists()
        # Checkpoints served their purpose and are gone.
        assert not CheckpointStore.present(rundir)

    def test_top_level_reexport(self):
        import repro

        assert repro.Run is api.Run
        assert repro.api is api


class TestRunHandle:
    def test_load_round_trip(self, tmp_path):
        rundir = tmp_path / "run"
        run = api.simulate(_config(), out=rundir)
        back = api.Run.load(rundir)
        assert np.array_equal(
            back.feeds.mobility.user_ids, run.feeds.mobility.user_ids
        )
        assert "users" in repr(back)

    def test_study_is_cached(self, tmp_path):
        run = api.simulate(_config())
        assert run.study() is run.study()

    def test_save_rehomes(self, tmp_path):
        run = api.simulate(_config())
        with pytest.raises(ValueError, match="directory"):
            run.save()
        path = run.save(tmp_path / "elsewhere")
        assert run.directory == path
        assert (path / "manifest.json").exists()

    def test_wrapping_nothing_rejected(self):
        with pytest.raises(ValueError):
            api.Run(None)

    def test_load_alias(self, tmp_path):
        rundir = tmp_path / "run"
        api.simulate(_config(), out=rundir)
        assert api.load(rundir).directory == rundir


class TestResume:
    def _interrupt(self, rundir):
        with pytest.raises(ShardExecutionError):
            api.simulate(
                _config(fault_spec="kill:day=9"), out=rundir
            )

    def test_completes_an_interrupted_run(self, tmp_path):
        rundir = tmp_path / "run"
        self._interrupt(rundir)
        assert CheckpointStore.present(rundir)

        # Loading the interrupted directory names the problem...
        with pytest.raises(RunStoreError, match="--resume"):
            api.Run.load(rundir)

        # ...and resume() finishes it, bitwise what simulate produces.
        run = api.resume(rundir)
        assert (rundir / "manifest.json").exists()
        assert not CheckpointStore.present(rundir)
        clean = api.simulate(_config())
        for day in (0, 9, 13):  # before, at, and past the kill point
            assert np.array_equal(
                run.feeds.mobility.dwell(day),
                clean.feeds.mobility.dwell(day),
            )

    def test_on_a_finished_run_just_loads(self, tmp_path):
        rundir = tmp_path / "run"
        api.simulate(_config(), out=rundir)
        run = api.resume(rundir)
        assert run.directory == rundir

    def test_run_resume_is_identity(self, tmp_path):
        run = api.simulate(_config())
        assert run.resume() is run

    def test_nothing_to_resume_surfaces_load_error(self, tmp_path):
        with pytest.raises(RunStoreError, match="does not exist"):
            api.resume(tmp_path / "nowhere")
