"""Tests for the :mod:`repro.api` facade.

The facade's promise is one front door for the whole lifecycle —
simulate, save, open, resume, analyze — with crash-safety on by
default and precise errors from broken run directories.  These tests
drive each lifecycle edge through :class:`repro.api.Run` and check the
handle stays consistent with the lower layers it wraps.  (Live-mode
``Run.advance`` has its own suite in ``tests/test_live.py``.)
"""

import datetime as dt

import numpy as np
import pytest

from repro import api
from repro.io import RunStoreError
from repro.simulation.checkpoint import CheckpointStore
from repro.simulation.clock import StudyCalendar
from repro.simulation.config import SimulationConfig
from repro.simulation.faults import RecoverySettings, ShardExecutionError

_CALENDAR = StudyCalendar(first_day=dt.date(2020, 2, 24), num_days=14)


def _config(**overrides):
    return SimulationConfig.tiny(seed=11).with_overrides(
        num_users=160,
        target_site_count=40,
        calendar=_CALENDAR,
        recovery=RecoverySettings(max_retries=0),
        **overrides,
    )


class TestSimulate:
    def test_in_memory(self):
        run = api.simulate(_config())
        assert run.directory is None
        assert run.config.seed == 11
        assert run.feeds.calendar.num_days == 14

    def test_persisted(self, tmp_path):
        rundir = tmp_path / "run"
        run = api.simulate(_config(), rundir)
        assert run.directory == rundir
        assert (rundir / "manifest.json").exists()
        # Checkpoints served their purpose and are gone.
        assert not CheckpointStore.present(rundir)

    def test_top_level_reexport(self):
        import repro

        assert repro.Run is api.Run
        assert repro.api is api


class TestRunHandle:
    def test_open_round_trip(self, tmp_path):
        rundir = tmp_path / "run"
        run = api.simulate(_config(), rundir)
        back = api.Run.open(rundir)
        assert np.array_equal(
            back.feeds.mobility.user_ids, run.feeds.mobility.user_ids
        )
        assert "users" in repr(back)

    def test_study_is_cached(self, tmp_path):
        run = api.simulate(_config())
        assert run.study() is run.study()

    def test_save_rehomes(self, tmp_path):
        run = api.simulate(_config())
        with pytest.raises(ValueError, match="directory"):
            run.save()
        path = run.save(tmp_path / "elsewhere")
        assert run.directory == path
        assert (path / "manifest.json").exists()

    def test_wrapping_nothing_rejected(self):
        with pytest.raises(ValueError):
            api.Run(None)

    def test_deprecated_aliases_still_work(self, tmp_path):
        rundir = tmp_path / "run"
        with pytest.warns(DeprecationWarning, match="directory"):
            api.simulate(_config(), out=rundir)
        with pytest.warns(DeprecationWarning, match="Run.open"):
            assert api.load(rundir).directory == rundir
        with pytest.warns(DeprecationWarning, match="Run.open"):
            assert api.Run.load(rundir).directory == rundir

    def test_out_and_directory_together_rejected(self, tmp_path):
        with pytest.raises(TypeError, match="out"):
            with pytest.warns(DeprecationWarning):
                api.simulate(
                    _config(), tmp_path / "a", out=tmp_path / "b"
                )


class TestStudyCache:
    """study() auto-attaches the run's artifact cache when persisted."""

    def test_persisted_run_attaches_and_populates(self, tmp_path):
        from repro.analysis.cache import CACHE_SUBDIR, ArtifactCache

        rundir = tmp_path / "run"
        run = api.simulate(_config(), rundir)
        study = run.study()
        assert study.artifact_cache is not None
        assert study.artifact_cache.directory == rundir / CACHE_SUBDIR

        metrics = study.metrics  # computes and persists the artifact
        store = ArtifactCache.open(rundir)
        cached = store.get("metrics", {"gyration_mode": "weighted"})
        assert cached is not None
        assert np.array_equal(cached.entropy, metrics.entropy)
        assert np.array_equal(cached.gyration_km, metrics.gyration_km)

        # A second process (fresh load) serves the same bytes back.
        warm = api.Run.open(rundir).study().metrics
        assert np.array_equal(warm.entropy, metrics.entropy)

    def test_cache_false_runs_in_memory(self, tmp_path):
        rundir = tmp_path / "run"
        run = api.simulate(_config(), rundir)
        study = run.study(cache=False)
        _ = study.metrics
        assert study.artifact_cache is None
        assert not (rundir / "cache").exists()

    def test_in_memory_run_has_no_cache(self):
        run = api.simulate(_config())
        assert run.study().artifact_cache is None


class TestResume:
    def _interrupt(self, rundir):
        with pytest.raises(ShardExecutionError):
            api.simulate(
                _config(fault_spec="kill:day=9"), rundir
            )

    def test_completes_an_interrupted_run(self, tmp_path):
        rundir = tmp_path / "run"
        self._interrupt(rundir)
        assert CheckpointStore.present(rundir)

        # Loading the interrupted directory names the problem...
        with pytest.raises(RunStoreError, match="--resume"):
            api.Run.open(rundir)

        # ...and resume() finishes it, bitwise what simulate produces.
        run = api.resume(rundir)
        assert (rundir / "manifest.json").exists()
        assert not CheckpointStore.present(rundir)
        clean = api.simulate(_config())
        for day in (0, 9, 13):  # before, at, and past the kill point
            assert np.array_equal(
                run.feeds.mobility.dwell(day),
                clean.feeds.mobility.dwell(day),
            )

    def test_on_a_finished_run_just_loads(self, tmp_path):
        rundir = tmp_path / "run"
        api.simulate(_config(), rundir)
        run = api.resume(rundir)
        assert run.directory == rundir

    def test_run_resume_is_identity(self, tmp_path):
        run = api.simulate(_config())
        assert run.resume() is run

    def test_nothing_to_resume_surfaces_load_error(self, tmp_path):
        with pytest.raises(RunStoreError, match="does not exist"):
            api.resume(tmp_path / "nowhere")
