"""Live-operator mode: ``Run.advance``, append commits, incremental analytics.

The contract under test is *bitwise path-independence*: a run grown
day-window by day-window through :meth:`repro.api.Run.advance` must
leave, at every moment it is frozen, a run directory byte-identical to
the one a single batch ``simulate`` writes — feeds, tables, manifest
and all — and its analysis must equal a from-scratch recompute while
reusing every already-seen day range from the artifact cache.  A crash
at any point of an append (including the manifest commit itself) must
leave the directory loadable at its previous day count.
"""

import dataclasses
import datetime as dt
import os
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro import api
from repro.simulation.checkpoint import CheckpointStore
from repro.simulation.clock import StudyCalendar
from repro.simulation.config import SimulationConfig
from repro.simulation.faults import RecoverySettings, ShardExecutionError

_HORIZON = 12
_CAL = StudyCalendar(first_day=dt.date(2020, 2, 24), num_days=_HORIZON)


def _config(shards: int = 1, **overrides):
    config = SimulationConfig.tiny(seed=23).with_overrides(
        num_users=96,
        target_site_count=30,
        calendar=_CAL,
        recovery=RecoverySettings(max_retries=0),
        **overrides,
    )
    return config.with_parallelism(shards, workers=1)


def _tree(path: Path, skip=("cache", "checkpoints")) -> dict[str, bytes]:
    """Every committed file of a run directory, by relative path."""
    files = {}
    for item in sorted(Path(path).rglob("*")):
        relative = item.relative_to(path)
        if item.is_file() and relative.parts[0] not in skip:
            files[str(relative)] = item.read_bytes()
    return files


class TestAdvanceEquivalence:
    """advance()-grown directories are byte-identical to batch ones."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_chunked_advance_matches_batch(self, tmp_path, shards):
        api.simulate(_config(shards), tmp_path / "batch")
        run = api.simulate(_config(shards), tmp_path / "live", days=5)
        assert (run.days, run.horizon) == (5, _HORIZON)
        assert not run.frozen()
        while not run.frozen():
            run.advance(3)
        assert run.days == _HORIZON
        assert _tree(tmp_path / "live") == _tree(tmp_path / "batch")

    def test_day_at_a_time_matches_batch(self, tmp_path):
        api.simulate(_config(), tmp_path / "batch")
        run = api.simulate(_config(), tmp_path / "live", days=1)
        for _ in range(_HORIZON - 1):
            run.advance(1)
        assert run.frozen()
        assert _tree(tmp_path / "live") == _tree(tmp_path / "batch")

    def test_naive_engine_path(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_NAIVE", "1")
        api.simulate(_config(), tmp_path / "batch")
        run = api.simulate(_config(), tmp_path / "live", days=7)
        run.advance(5)
        assert run.frozen()
        assert _tree(tmp_path / "live") == _tree(tmp_path / "batch")

    def test_partial_prefixes_are_path_independent(self, tmp_path):
        """Two advance paths to the same prefix load identical state.

        The on-disk segment layout records the advance history (that
        is what makes appends cheap), so only the *loaded* run is
        compared here; byte-identity of the directory itself is
        guaranteed — and asserted above — once the run freezes.
        """
        from repro.core.statistics import compute_daily_metrics

        one = api.simulate(_config(), tmp_path / "one", days=2)
        one.advance(2).advance(4)
        two = api.simulate(_config(), tmp_path / "two", days=6)
        two.advance(2)
        assert one.days == two.days == 8
        for day in range(8):
            assert np.array_equal(
                one.feeds.mobility.dwell(day),
                two.feeds.mobility.dwell(day),
            )
        assert (
            one.feeds.radio_kpis.column_names
            == two.feeds.radio_kpis.column_names
        )
        for name in one.feeds.radio_kpis.column_names:
            assert np.array_equal(
                one.feeds.radio_kpis[name], two.feeds.radio_kpis[name]
            )
        assert one.feeds.live == two.feeds.live
        lhs = compute_daily_metrics(one.feeds)
        rhs = compute_daily_metrics(two.feeds)
        assert np.array_equal(lhs.entropy, rhs.entropy)
        assert np.array_equal(lhs.gyration_km, rhs.gyration_km)


class TestRunHandleLive:
    def test_open_reflects_live_state(self, tmp_path):
        api.simulate(_config(), tmp_path / "run", days=4)
        run = api.Run.open(tmp_path / "run")
        assert (run.days, run.horizon) == (4, _HORIZON)
        assert not run.frozen()
        assert "live" in repr(run)
        # The analysis calendar ends where the data ends; the
        # configuration keeps the full horizon for advance().
        assert run.feeds.calendar.num_days == 4
        assert run.config.calendar.num_days == _HORIZON

    def test_advance_requires_directory(self):
        run = api.simulate(_config())
        with pytest.raises(ValueError, match="in-memory"):
            run.advance()

    def test_advance_on_frozen_run_rejected(self, tmp_path):
        run = api.simulate(_config(), tmp_path / "run")
        assert run.frozen()
        with pytest.raises(ValueError, match="frozen"):
            run.advance()

    def test_advance_needs_positive_days(self, tmp_path):
        run = api.simulate(_config(), tmp_path / "run", days=3)
        with pytest.raises(ValueError, match="days >= 1"):
            run.advance(0)

    def test_days_requires_directory(self):
        with pytest.raises(ValueError, match="directory"):
            api.simulate(_config(), days=3)

    def test_days_out_of_range(self, tmp_path):
        with pytest.raises(ValueError, match="horizon"):
            api.simulate(_config(), tmp_path / "run", days=_HORIZON + 1)

    def test_live_incompatible_flags_rejected(self, tmp_path):
        config = _config(emit_signaling=True)
        with pytest.raises(ValueError, match="emit_signaling"):
            api.simulate(config, tmp_path / "run", days=3)


class TestCrashSafety:
    """A torn advance never moves the committed state."""

    def test_crash_at_manifest_commit(self, tmp_path, monkeypatch):
        import repro.io.store as store

        rundir = tmp_path / "run"
        run = api.simulate(_config(), rundir, days=4)
        before = _tree(rundir)

        real = store._atomic_text

        def torn(text, final):
            if final.name == "manifest.json":
                raise OSError("disk full")
            return real(text, final)

        monkeypatch.setattr(store, "_atomic_text", torn)
        with pytest.raises(OSError, match="disk full"):
            run.advance(3)
        monkeypatch.undo()

        # Every previously committed file is untouched; the new
        # segment files are unreferenced garbage, not corruption.
        after = _tree(rundir)
        for name, payload in before.items():
            assert after[name] == payload

        reopened = api.Run.open(rundir)
        assert reopened.days == 4
        reopened.advance(3)
        while not reopened.frozen():
            reopened.advance(4)
        api.simulate(_config(), tmp_path / "batch")
        assert _tree(rundir) == _tree(tmp_path / "batch")

    def test_kill_mid_advance_then_resume(self, tmp_path):
        rundir = tmp_path / "run"
        # The fault arms day 5, beyond the initial 4-day window: the
        # first save is clean, the advance covering day 5 dies.
        killer = _config(fault_spec="kill:day=5")
        run = api.simulate(killer, rundir, days=4)
        with pytest.raises(ShardExecutionError):
            run.advance(4)

        # resume() on a live run is just open(): the torn advance
        # never touched the manifest.
        reopened = api.resume(rundir)
        assert reopened.days == 4
        # Its checkpointed window days survive for the retry.
        assert CheckpointStore.present(rundir)

        # Clear the fault (operational state, excluded from the
        # checkpoint config digest) and grow to the horizon.
        reopened.feeds.config = dataclasses.replace(
            reopened.feeds.config, fault_spec=None
        )
        while not reopened.frozen():
            reopened.advance(4)

        api.simulate(_config(), tmp_path / "batch")
        live, batch = _tree(rundir), _tree(tmp_path / "batch")
        # config.pkl still records the (spent) fault plan; everything
        # the fault cannot influence is byte-identical.
        differing = {"config.pkl", "manifest.json"}
        assert set(live) == set(batch)
        for name in set(live) - differing:
            assert live[name] == batch[name], name


class TestIncrementalAnalytics:
    """Advance re-analyzes only the new day range; stale whole-window
    artifacts miss automatically (digest-keyed) instead of serving
    pre-advance results."""

    def _spy(self, monkeypatch):
        import repro.analysis.mobility as mobility

        calls: list[tuple[int, int]] = []
        real = mobility.compute_daily_metrics

        def recording(feeds, *args, **kwargs):
            calls.append(kwargs.get("day_range"))
            return real(feeds, *args, **kwargs)

        monkeypatch.setattr(mobility, "compute_daily_metrics", recording)
        return calls

    def test_only_new_ranges_recompute(self, tmp_path, monkeypatch):
        from repro.core.statistics import compute_daily_metrics

        rundir = tmp_path / "run"
        run = api.simulate(_config(), rundir, days=6)
        calls = self._spy(monkeypatch)

        first = run.study().metrics
        assert calls == [(0, 6)]

        calls.clear()
        run.advance(3)
        second = run.study().metrics
        assert calls == [(6, 9)]  # days 0-6 came from their range artifact

        # The stale 6-day whole-window artifact was not served: the
        # composed result equals a from-scratch recompute.
        fresh = compute_daily_metrics(run.feeds)
        assert second.entropy.shape[0] == 9
        assert np.array_equal(second.entropy, fresh.entropy)
        assert np.array_equal(second.gyration_km, fresh.gyration_km)
        assert second.entropy.shape[0] > first.entropy.shape[0]

        # Fully warm: nothing recomputes.
        calls.clear()
        warm = api.Run.open(rundir).study().metrics
        assert calls == []
        assert np.array_equal(warm.entropy, second.entropy)

    def test_summary_artifacts_track_day_count(self, tmp_path):
        from repro.analysis.cache import ArtifactCache, summary_params

        rundir = tmp_path / "run"
        run = api.simulate(_config(), rundir, days=6)
        metrics_6 = run.study().metrics
        run.advance(2)
        # The cache opened against the advanced manifest is keyed on
        # the new digests: the 6-day entry is unreachable (auto-miss).
        cache = ArtifactCache.open(rundir)
        assert cache.get("summary", summary_params()) is None
        metrics_8 = run.study().metrics
        assert metrics_8.entropy.shape[0] == 8
        assert np.array_equal(
            metrics_8.entropy[:6], metrics_6.entropy
        )


try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis ships with dev deps
    pytest.skip("hypothesis is not installed", allow_module_level=True)

#: (shards, naive) -> committed batch tree, computed once per profile.
_BATCH: dict[tuple[int, bool], dict[str, bytes]] = {}


def _batch_tree(shards: int, naive: bool) -> dict[str, bytes]:
    key = (shards, naive)
    if key not in _BATCH:
        directory = Path(tempfile.mkdtemp(prefix="repro-live-batch-"))
        api.simulate(_config(shards), directory / "run")
        _BATCH[key] = _tree(directory / "run")
    return _BATCH[key]


@st.composite
def _advance_plans(draw):
    """A partition of the 12-day horizon into an initial simulate
    window plus advance() chunks."""
    cuts = draw(
        st.sets(st.integers(1, _HORIZON - 1), min_size=1, max_size=3)
    )
    bounds = [0, *sorted(cuts), _HORIZON]
    chunks = [b - a for a, b in zip(bounds, bounds[1:])]
    shards = draw(st.sampled_from([1, 2, 4]))
    naive = draw(st.booleans())
    return chunks, shards, naive


class TestAdvanceProperty:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.data_too_large],
    )
    @given(_advance_plans())
    def test_any_partition_matches_batch(self, plan):
        chunks, shards, naive = plan
        previous = os.environ.get("REPRO_SIM_NAIVE")
        os.environ["REPRO_SIM_NAIVE"] = "1" if naive else "0"
        try:
            with tempfile.TemporaryDirectory() as scratch:
                rundir = Path(scratch) / "run"
                run = api.simulate(
                    _config(shards), rundir, days=chunks[0]
                )
                for chunk in chunks[1:]:
                    run.advance(chunk)
                assert run.frozen()
                assert _tree(rundir) == _batch_tree(shards, naive)
        finally:
            if previous is None:
                os.environ.pop("REPRO_SIM_NAIVE", None)
            else:
                os.environ["REPRO_SIM_NAIVE"] = previous
