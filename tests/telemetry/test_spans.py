"""Recorder semantics: span nesting, timing, counters, the global switch.

Timing tests use injected fake clocks (an iterator of floats) so every
assertion is exact — no sleeps, no tolerance bands. The one wall-clock
test asserts only monotonicity, which ``perf_counter`` guarantees.
"""

import time

import pytest

from repro import telemetry
from repro.telemetry import NOOP_SPAN, TelemetryRecorder


def ticking(*values):
    """A clock returning the given instants in order."""
    iterator = iter(values)
    return lambda: float(next(iterator))


# ----------------------------------------------------------------------
# Span nesting and timing
# ----------------------------------------------------------------------
def test_nested_spans_record_slash_paths():
    recorder = TelemetryRecorder(clock=ticking(0, 1, 2, 3))
    with recorder.span("simulate"):
        with recorder.span("build_world"):
            pass
    snap = recorder.snapshot()
    assert set(snap["spans"]) == {"simulate", "simulate/build_world"}
    assert snap["spans"]["simulate/build_world"]["seconds"] == 1.0
    assert snap["spans"]["simulate"]["seconds"] == 3.0


def test_same_path_accumulates_calls_and_seconds():
    recorder = TelemetryRecorder(clock=ticking(0, 1, 10, 13))
    for _ in range(2):
        with recorder.span("scatter"):
            pass
    stats = recorder.snapshot()["spans"]["scatter"]
    assert stats["calls"] == 2
    assert stats["seconds"] == 4.0  # (1 - 0) + (13 - 10)


def test_same_name_different_stack_is_a_different_path():
    recorder = TelemetryRecorder(clock=ticking(*range(8)))
    with recorder.span("a"):
        with recorder.span("work"):
            pass
    with recorder.span("b"):
        with recorder.span("work"):
            pass
    assert set(recorder.snapshot()["spans"]) == {
        "a", "a/work", "b", "b/work"
    }


def test_parent_seconds_cover_children():
    recorder = TelemetryRecorder(clock=ticking(0, 1, 4, 5, 9, 11))
    with recorder.span("parent"):
        with recorder.span("child"):
            pass
        with recorder.span("child"):
            pass
    spans = recorder.snapshot()["spans"]
    assert spans["parent"]["seconds"] >= spans["parent/child"]["seconds"]


def test_wall_clock_timing_is_monotone():
    recorder = TelemetryRecorder()  # real perf_counter
    with recorder.span("outer"):
        with recorder.span("inner"):
            time.sleep(0.002)
    spans = recorder.snapshot()["spans"]
    assert spans["outer/inner"]["seconds"] > 0.0
    assert spans["outer"]["seconds"] >= spans["outer/inner"]["seconds"]


def test_span_path_survives_exit():
    recorder = TelemetryRecorder(clock=ticking(0, 1, 2, 3))
    with recorder.span("outer") as outer:
        with recorder.span("inner") as inner:
            assert inner.path == "outer/inner"
    assert outer.path == "outer"
    assert inner.path == "outer/inner"


# ----------------------------------------------------------------------
# Counters
# ----------------------------------------------------------------------
def test_span_counters_seed_and_accumulate():
    recorder = TelemetryRecorder(clock=ticking(0, 1, 2, 3))
    for day in range(2):
        with recorder.span("day", rows=10) as sp:
            sp.add("rows", 5)
            sp.add("bytes", 100)
    counters = recorder.snapshot()["spans"]["day"]["counters"]
    assert counters == {"rows": 30, "bytes": 200}


def test_process_counters_sum():
    recorder = TelemetryRecorder()
    recorder.count("joins")
    recorder.count("joins", 4)
    assert recorder.snapshot()["counters"]["joins"] == 5


def test_snapshot_is_a_deep_copy():
    recorder = TelemetryRecorder(clock=ticking(0, 1))
    with recorder.span("phase", rows=1):
        pass
    snap = recorder.snapshot()
    snap["spans"]["phase"]["counters"]["rows"] = 999
    snap["counters"]["new"] = 1
    fresh = recorder.snapshot()
    assert fresh["spans"]["phase"]["counters"]["rows"] == 1
    assert "new" not in fresh["counters"]


# ----------------------------------------------------------------------
# The global switch and its no-op path
# ----------------------------------------------------------------------
def test_disabled_span_is_the_shared_noop_singleton():
    assert not telemetry.enabled()
    first = telemetry.span("anything", rows=1)
    second = telemetry.span("else")
    assert first is NOOP_SPAN and second is NOOP_SPAN
    with first as sp:
        sp.add("rows", 10)  # swallowed
    assert telemetry.snapshot() is None


def test_disabled_count_and_absorb_are_noops():
    telemetry.count("rows", 5)
    telemetry.absorb({"version": 1, "counters": {"rows": 1}, "spans": {}})
    assert telemetry.snapshot() is None


def test_enable_records_and_disable_returns_recorder():
    recorder = telemetry.enable()
    assert telemetry.enabled()
    assert telemetry.active() is recorder
    with telemetry.span("phase"):
        telemetry.count("rows", 2)
    snap = telemetry.snapshot()
    assert snap["spans"]["phase"]["calls"] == 1
    assert snap["counters"]["rows"] == 2
    assert telemetry.disable() is recorder
    assert not telemetry.enabled()


def test_swap_installs_and_returns_previous():
    first = telemetry.enable()
    second = TelemetryRecorder()
    assert telemetry.swap(second) is first
    assert telemetry.active() is second
    assert telemetry.swap(None) is second
    assert not telemetry.enabled()


def test_timed_decorator_paths_and_disabled_passthrough():
    @telemetry.timed("square")
    def square(x):
        return x * x

    assert square(3) == 9  # disabled: plain call
    telemetry.enable()
    with telemetry.span("analyze"):
        assert square(4) == 16
    snap = telemetry.snapshot()
    assert snap["spans"]["analyze/square"]["calls"] == 1
    telemetry.disable()


def test_reset_clears_but_refuses_open_spans():
    recorder = TelemetryRecorder(clock=ticking(0, 1, 2, 3))
    with recorder.span("phase"):
        pass
    recorder.count("rows")
    recorder.reset()
    assert recorder.snapshot() == {
        "version": 1, "spans": {}, "counters": {}
    }
    span = recorder.span("open")
    span.__enter__()
    with pytest.raises(RuntimeError):
        recorder.reset()
    span.__exit__(None, None, None)


# ----------------------------------------------------------------------
# Absorb (the cross-process merge primitive)
# ----------------------------------------------------------------------
def test_absorb_prefixes_spans_and_merges_counters_flat():
    worker = TelemetryRecorder(clock=ticking(0, 2))
    with worker.span("shard", users=100):
        worker.count("frames.join.calls", 3)
    coordinator = TelemetryRecorder(clock=ticking(0, 1))
    with coordinator.span("simulate") as sp:
        pass
    coordinator.absorb(worker.snapshot(), prefix=sp.path)
    snap = coordinator.snapshot()
    assert snap["spans"]["simulate/shard"]["counters"]["users"] == 100
    assert snap["counters"]["frames.join.calls"] == 3


def test_absorb_twice_accumulates():
    worker = TelemetryRecorder(clock=ticking(0, 2))
    with worker.span("shard", users=100):
        pass
    snapshot = worker.snapshot()
    coordinator = TelemetryRecorder()
    coordinator.absorb(snapshot)
    coordinator.absorb(snapshot)
    stats = coordinator.snapshot()["spans"]["shard"]
    assert stats["calls"] == 2
    assert stats["seconds"] == 4.0
    assert stats["counters"]["users"] == 200
