"""Telemetry tests share one process-wide recorder switch.

Every test starts and ends with telemetry disabled so a failing test
cannot leak an active recorder into its neighbours (the module-global
switch is exactly the kind of state pytest ordering would otherwise
smear across tests).
"""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _telemetry_disabled():
    telemetry.disable()
    yield
    telemetry.disable()
