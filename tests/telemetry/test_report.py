"""Snapshot merging and phase-table rendering.

Merge associativity is the property that makes per-shard telemetry
shard-layout-independent: counters and call counts are integers (exact
under any grouping) and the seconds used here are exact binary
fractions, so associativity can be asserted with ``==`` rather than
``allclose`` — the same discipline the engine's own shard-equivalence
suite applies to integer aggregates.
"""

import itertools

from repro.telemetry import (
    TelemetryRecorder,
    empty_snapshot,
    merge_snapshots,
    render_phase_table,
)


def shard_snapshot(users, seconds, joins):
    """A worker-shaped snapshot with exact binary-fraction seconds."""
    return {
        "version": 1,
        "spans": {
            "shard": {
                "calls": 1,
                "seconds": seconds,
                "counters": {"users": users},
            },
            "shard/scatter": {
                "calls": 7,
                "seconds": seconds / 2,
                "counters": {},
            },
        },
        "counters": {"frames.join.calls": joins},
    }


SHARDS = [
    shard_snapshot(100, 0.5, 3),
    shard_snapshot(60, 0.25, 2),
    shard_snapshot(45, 1.75, 8),
    shard_snapshot(35, 0.125, 1),
]


def test_merge_is_associative_and_commutative():
    a, b, c = SHARDS[:3]
    left_first = merge_snapshots(merge_snapshots(a, b), c)
    right_first = merge_snapshots(a, merge_snapshots(b, c))
    flat = merge_snapshots(a, b, c)
    assert left_first == right_first == flat
    for permutation in itertools.permutations(SHARDS[:3]):
        assert merge_snapshots(*permutation) == flat


def test_merge_identity_and_none_skipping():
    snap = SHARDS[0]
    assert merge_snapshots(snap, empty_snapshot()) == merge_snapshots(snap)
    assert merge_snapshots(None, snap, None) == merge_snapshots(snap)
    assert merge_snapshots() == empty_snapshot()
    assert merge_snapshots(None) == empty_snapshot()


def test_merge_totals_match_shard_sums():
    merged = merge_snapshots(*SHARDS)
    shard = merged["spans"]["shard"]
    assert shard["calls"] == len(SHARDS)
    assert shard["counters"]["users"] == 100 + 60 + 45 + 35
    assert shard["seconds"] == 0.5 + 0.25 + 1.75 + 0.125  # exact
    assert merged["counters"]["frames.join.calls"] == 3 + 2 + 8 + 1
    assert merged["spans"]["shard/scatter"]["calls"] == 7 * len(SHARDS)


def test_render_empty_snapshot():
    assert render_phase_table(None) == "telemetry: nothing recorded"
    assert render_phase_table(empty_snapshot()) == (
        "telemetry: nothing recorded"
    )


def test_render_indents_children_under_parents():
    recorder = TelemetryRecorder(clock=iter(range(20)).__next__)
    with recorder.span("simulate", days=98):
        with recorder.span("shard_execution"):
            with recorder.span("shard"):
                pass
    recorder.count("frames.join.calls", 3)
    table = render_phase_table(recorder.snapshot())
    lines = table.splitlines()
    assert lines[0].startswith("phase")
    assert lines[1].startswith("simulate ")
    assert "days=98" in lines[1]
    assert lines[2].startswith("  shard_execution")
    assert lines[3].startswith("    shard")
    assert lines[-2].startswith("counter")
    assert lines[-1].startswith("frames.join.calls")
    assert lines[-1].rstrip().endswith("3")


def test_render_sorts_counters_within_a_row():
    snap = {
        "version": 1,
        "spans": {
            "phase": {
                "calls": 1,
                "seconds": 0.5,
                "counters": {"zeta": 1, "alpha": 2.0, "mid": 2.5},
            }
        },
        "counters": {},
    }
    row = render_phase_table(snap).splitlines()[1]
    # Alphabetical order; integral floats print as ints.
    assert row.rstrip().endswith("alpha=2 mid=2.5 zeta=1")
