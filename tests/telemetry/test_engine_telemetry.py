"""Telemetry through the engine: shard merging, persistence, off-path.

The engine's determinism contract says shard layout never changes the
data; these tests pin the telemetry analogue — integer span counters
merge to the same totals for K ∈ {1, 2, 4} shards — plus the snapshot's
round-trip through ``save_feeds``/``load_feeds`` and the guarantee that
a disabled run records nothing.
"""

import datetime as dt
import json

import pytest

from repro import telemetry
from repro.io import load_feeds, save_feeds
from repro.simulation.clock import StudyCalendar
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator

_CALENDAR = StudyCalendar(first_day=dt.date(2020, 2, 24), num_days=14)
_CONFIG = SimulationConfig(
    num_users=240,
    target_site_count=40,
    seed=77,
    calendar=_CALENDAR,
)


def run_with_telemetry(config):
    telemetry.enable()
    try:
        feeds = Simulator(config).run()
    finally:
        telemetry.disable()
    return feeds


def span_counters(snapshot, path):
    return snapshot["spans"][path]["counters"]


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_shard_spans_merge_to_serial_totals(shards):
    serial = run_with_telemetry(_CONFIG).telemetry
    sharded = run_with_telemetry(
        _CONFIG.with_parallelism(shards)
    ).telemetry

    shard_path = "simulate/shard_execution/shard"
    stats = sharded["spans"][shard_path]
    assert stats["calls"] == shards
    # Integer counters are exact under any shard grouping.
    assert span_counters(sharded, shard_path)["users"] == (
        span_counters(serial, shard_path)["users"]
    )
    assert span_counters(sharded, shard_path)["days"] == (
        shards * _CALENDAR.num_days
    )
    day_path = shard_path + "/dwell_assembly"
    assert sharded["spans"][day_path]["calls"] == (
        shards * _CALENDAR.num_days
    )
    assert span_counters(sharded, day_path)["dwell_cells"] == (
        span_counters(serial, day_path)["dwell_cells"]
    )


def test_pool_workers_ship_spans_home():
    feeds = run_with_telemetry(_CONFIG.with_parallelism(4, workers=2))
    snapshot = feeds.telemetry
    shard_path = "simulate/shard_execution/shard"
    assert snapshot["spans"][shard_path]["calls"] == 4
    serial = run_with_telemetry(_CONFIG).telemetry
    assert span_counters(snapshot, shard_path)["users"] == (
        span_counters(serial, shard_path)["users"]
    )


def test_snapshot_round_trips_through_manifest(tmp_path):
    feeds = run_with_telemetry(_CONFIG)
    assert feeds.telemetry is not None
    path = save_feeds(feeds, tmp_path / "run")

    manifest = json.loads((path / "manifest.json").read_text())
    assert manifest["telemetry"] == feeds.telemetry

    reloaded = load_feeds(path)
    assert reloaded.telemetry == feeds.telemetry


def test_disabled_run_records_nothing(tmp_path):
    assert not telemetry.enabled()
    feeds = Simulator(_CONFIG).run()
    assert feeds.telemetry is None
    path = save_feeds(feeds, tmp_path / "run")
    manifest = json.loads((path / "manifest.json").read_text())
    assert "telemetry" not in manifest
    assert load_feeds(path).telemetry is None
