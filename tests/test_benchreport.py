"""Benchmark collation and regression gating (:mod:`repro.benchreport`)."""

import json

from repro import benchreport
from repro.benchreport import (
    MetricRow,
    check_regressions,
    collect_results,
    metric_rows,
    render_table,
    summarize,
)

_SAMPLE = {
    "smoke": {
        "bitwise_identical": True,
        "analyze": {
            "analyze_seconds": 1.5,
            "user_days_per_sec": 80_000,
            "peak_rss_bytes": 1024**3,
            "entropy_sha256": "abc",
        },
        "sweep": [
            {"num_shards": 2, "workers": 2, "speedup_vs_serial": 1.8},
            {"num_shards": 4, "workers": 4, "speedup_vs_serial": 3.1},
        ],
    }
}


def _rows(tree=_SAMPLE):
    return metric_rows({"bench": tree})


class TestCollect:
    def test_reads_json_files_by_stem(self, tmp_path):
        (tmp_path / "alpha.json").write_text(json.dumps({"x": 1}))
        (tmp_path / "beta.json").write_text("not json at all")
        results = collect_results(tmp_path)
        assert results == {"alpha": {"x": 1}}

    def test_missing_directory_is_empty(self, tmp_path):
        assert collect_results(tmp_path / "nope") == {}


class TestKinds:
    def test_speedups_and_gates_are_gated(self):
        kinds = {row.metric: row for row in _rows()}
        assert kinds["smoke.bitwise_identical"].kind == "gate"
        assert kinds["smoke.analyze.user_days_per_sec"].kind == "speedup"
        assert kinds["smoke.analyze.analyze_seconds"].kind == "seconds"
        assert kinds["smoke.analyze.peak_rss_bytes"].kind == "bytes"
        assert kinds["smoke.bitwise_identical"].gated
        assert not kinds["smoke.analyze.analyze_seconds"].gated

    def test_rss_ratio_is_not_gated(self):
        rows = _rows({"rss_payload_ratio": 2.9})
        assert rows[0].kind == "count"
        assert not rows[0].gated

    def test_hashes_are_skipped(self):
        metrics = [row.metric for row in _rows()]
        assert not any("sha256" in metric for metric in metrics)

    def test_sweep_entries_get_distinct_paths(self):
        metrics = [
            row.metric
            for row in _rows()
            if "sweep[" in row.metric and "speedup" in row.metric
        ]
        assert len(metrics) == len(set(metrics)) == 2

    def test_same_label_different_size_stays_distinct(self):
        tree = {
            "sweep": [
                {"operation": "join", "rows": 100, "seconds": 0.1},
                {"operation": "join", "rows": 1000, "seconds": 0.4},
            ]
        }
        metrics = [row.metric for row in _rows(tree)]
        assert len(metrics) == len(set(metrics)) == 4


class TestRender:
    def test_table_has_a_row_per_metric(self):
        rows = _rows()
        table = render_table(rows)
        assert table.count("\n") == len(rows) + 1
        assert "| pass |" in table or "pass" in table

    def test_summarize_round_trip(self, tmp_path):
        (tmp_path / "smoke.json").write_text(json.dumps(_SAMPLE["smoke"]))
        text = summarize(tmp_path)
        assert "Benchmark trajectory" in text
        assert "bitwise_identical" in text

    def test_summarize_empty_directory(self, tmp_path):
        assert "no benchmark results" in summarize(tmp_path)


class TestCheckRegressions:
    def _row(self, metric, kind, value):
        return MetricRow("bench", metric, kind, value)

    def test_gate_flip_fails(self):
        fresh = [self._row("identical", "gate", False)]
        base = [self._row("identical", "gate", True)]
        failures = check_regressions(fresh, base)
        assert failures and "flipped" in failures[0]

    def test_speedup_inside_band_passes(self):
        fresh = [self._row("speedup", "speedup", 1.8)]
        base = [self._row("speedup", "speedup", 2.0)]
        assert check_regressions(fresh, base, band_pct=15.0) == []

    def test_speedup_below_band_fails(self):
        fresh = [self._row("speedup", "speedup", 1.5)]
        base = [self._row("speedup", "speedup", 2.0)]
        failures = check_regressions(fresh, base, band_pct=15.0)
        assert failures and "regressed" in failures[0]

    def test_timings_never_compared(self):
        fresh = [self._row("analyze_seconds", "seconds", 99.0)]
        base = [self._row("analyze_seconds", "seconds", 1.0)]
        assert check_regressions(fresh, base) == []

    def test_one_sided_metrics_ignored(self):
        fresh = [self._row("new_speedup", "speedup", 0.1)]
        assert check_regressions(fresh, []) == []

    def test_improvements_pass(self):
        fresh = [self._row("speedup", "speedup", 5.0)]
        base = [self._row("speedup", "speedup", 2.0)]
        assert check_regressions(fresh, base) == []


class TestSelfConsistency:
    def test_committed_results_pass_self_check(self):
        from pathlib import Path

        results = Path(__file__).parent.parent / "benchmarks" / "results"
        rows = metric_rows(benchreport.collect_results(results))
        assert rows, "committed benchmark results should collate"
        assert check_regressions(rows, rows) == []
