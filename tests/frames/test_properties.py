"""Property-based tests for the frames substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frames import Frame, concat, group_by, join
from repro.frames.csvio import dumps_csv, loads_csv

keys = st.lists(
    st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1, max_size=60
)
floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def keyed_frames(draw):
    key_values = draw(keys)
    size = len(key_values)
    values = draw(
        st.lists(floats, min_size=size, max_size=size)
    )
    return Frame({"k": key_values, "v": values})


class TestGroupByProperties:
    @given(keyed_frames())
    @settings(max_examples=60, deadline=None)
    def test_group_sums_partition_total(self, frame):
        out = group_by(frame, "k").agg(total=("v", "sum"))
        assert np.isclose(out["total"].sum(), frame["v"].sum())

    @given(keyed_frames())
    @settings(max_examples=60, deadline=None)
    def test_group_counts_partition_rows(self, frame):
        sizes = group_by(frame, "k").sizes()
        assert sizes["count"].sum() == len(frame)

    @given(keyed_frames())
    @settings(max_examples=60, deadline=None)
    def test_median_between_min_and_max(self, frame):
        out = group_by(frame, "k").agg(
            med=("v", "median"), lo=("v", "min"), hi=("v", "max")
        )
        assert np.all(out["lo"] <= out["med"] + 1e-12)
        assert np.all(out["med"] <= out["hi"] + 1e-12)

    @given(keyed_frames())
    @settings(max_examples=60, deadline=None)
    def test_groups_match_python_reference(self, frame):
        out = group_by(frame, "k").agg(total=("v", "sum"))
        reference = {}
        for key, value in zip(frame["k"], frame["v"]):
            reference[key] = reference.get(key, 0.0) + value
        for key, total in zip(out["k"], out["total"]):
            assert np.isclose(total, reference[key])


class TestFrameProperties:
    @given(keyed_frames())
    @settings(max_examples=60, deadline=None)
    def test_sort_is_permutation(self, frame):
        out = frame.sort_by("v")
        assert sorted(out["v"].tolist()) == sorted(frame["v"].tolist())
        assert np.all(np.diff(out["v"]) >= 0)

    @given(keyed_frames())
    @settings(max_examples=60, deadline=None)
    def test_filter_then_concat_recovers_rows(self, frame):
        mask = frame["v"] >= 0
        kept = frame.filter(mask)
        dropped = frame.filter(~mask)
        assert len(kept) + len(dropped) == len(frame)
        merged = concat([kept, dropped])
        assert sorted(merged["v"].tolist()) == sorted(frame["v"].tolist())

    @given(keyed_frames())
    @settings(max_examples=40, deadline=None)
    def test_csv_round_trip(self, frame):
        back = loads_csv(dumps_csv(frame))
        assert back["k"].tolist() == frame["k"].tolist()
        assert np.allclose(back["v"], frame["v"])


class TestJoinProperties:
    @given(keyed_frames())
    @settings(max_examples=40, deadline=None)
    def test_join_with_unique_right_preserves_rows(self, frame):
        lookup = Frame(
            {"k": ["a", "b", "c", "d", "e"], "tag": [1, 2, 3, 4, 5]}
        )
        out = join(frame, lookup, on="k")
        assert len(out) == len(frame)

    @given(keyed_frames())
    @settings(max_examples=40, deadline=None)
    def test_left_join_never_drops_rows(self, frame):
        lookup = Frame({"k": ["a"], "tag": [1]})
        out = join(frame, lookup, on="k", how="left")
        assert len(out) == len(frame)
