"""Unit tests for the pivot reshape."""

import numpy as np
import pytest

from repro.frames import Frame, pivot


@pytest.fixture()
def long_frame() -> Frame:
    return Frame(
        {
            "county": ["Kent", "Kent", "Essex", "Essex", "Kent"],
            "day": [1, 2, 1, 2, 1],
            "visitors": [10.0, 20.0, 5.0, 7.0, 3.0],
        }
    )


class TestPivot:
    def test_sum_aggregation(self, long_frame):
        wide = pivot(long_frame, "county", "day", "visitors")
        assert wide["county"].tolist() == ["Essex", "Kent"]
        assert wide["1"].tolist() == [5.0, 13.0]
        assert wide["2"].tolist() == [7.0, 20.0]

    def test_mean_aggregation(self, long_frame):
        wide = pivot(
            long_frame, "county", "day", "visitors", aggregate="mean"
        )
        assert wide["1"].tolist() == [5.0, 6.5]

    def test_fill_for_missing_pairs(self):
        frame = Frame(
            {"k": ["a"], "c": [1], "v": [2.0]}
        )
        wide = pivot(frame, "k", "c", "v", fill=-1.0)
        assert wide["1"].tolist() == [2.0]
        sparse = Frame(
            {"k": ["a", "b"], "c": [1, 2], "v": [2.0, 3.0]}
        )
        wide = pivot(sparse, "k", "c", "v", fill=-1.0)
        by_key = dict(zip(wide["k"], wide["2"]))
        assert by_key["a"] == -1.0
        assert by_key["b"] == 3.0

    def test_missing_column_rejected(self, long_frame):
        with pytest.raises(KeyError):
            pivot(long_frame, "nope", "day", "visitors")

    def test_median_aggregation(self, long_frame):
        wide = pivot(
            long_frame, "county", "day", "visitors", aggregate="median"
        )
        assert wide["1"].tolist() == [5.0, 6.5]

    def test_round_trip_totals(self, long_frame):
        wide = pivot(long_frame, "county", "day", "visitors")
        total = sum(
            wide[name].sum() for name in wide.column_names
            if name != "county"
        )
        assert total == pytest.approx(long_frame["visitors"].sum())

