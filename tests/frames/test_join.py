"""Unit tests for frame joins."""

import numpy as np
import pytest

from repro.frames import Frame, join


@pytest.fixture()
def cells() -> Frame:
    return Frame(
        {"cell": ["a", "b", "c"], "postcode": ["N1", "EC1", "SW3"]}
    )


@pytest.fixture()
def kpis() -> Frame:
    return Frame(
        {"cell": ["a", "a", "b", "z"], "volume": [1.0, 2.0, 9.0, 7.0]}
    )


class TestInnerJoin:
    def test_basic(self, kpis, cells):
        out = join(kpis, cells, on="cell")
        assert out["postcode"].tolist() == ["N1", "N1", "EC1"]
        assert out["volume"].tolist() == [1.0, 2.0, 9.0]

    def test_unmatched_left_rows_dropped(self, kpis, cells):
        out = join(kpis, cells, on="cell")
        assert "z" not in out["cell"].tolist()

    def test_fanout_on_duplicate_right_keys(self):
        left = Frame({"k": ["a"], "x": [1]})
        right = Frame({"k": ["a", "a"], "y": [10, 20]})
        out = join(left, right, on="k")
        assert out["y"].tolist() == [10, 20]
        assert out["x"].tolist() == [1, 1]

    def test_multi_key(self):
        left = Frame({"k1": ["a", "a"], "k2": [1, 2], "x": [0.5, 1.5]})
        right = Frame({"k1": ["a"], "k2": [2], "y": [9]})
        out = join(left, right, on=["k1", "k2"])
        assert out["x"].tolist() == [1.5]
        assert out["y"].tolist() == [9]

    def test_name_collision_gets_suffix(self):
        left = Frame({"k": ["a"], "v": [1]})
        right = Frame({"k": ["a"], "v": [2]})
        out = join(left, right, on="k")
        assert out["v"].tolist() == [1]
        assert out["v_right"].tolist() == [2]

    def test_missing_key_raises(self, kpis, cells):
        with pytest.raises(KeyError):
            join(kpis, cells, on="nope")

    def test_bad_how_raises(self, kpis, cells):
        with pytest.raises(ValueError):
            join(kpis, cells, on="cell", how="outer")


class TestLeftJoin:
    def test_unmatched_rows_kept_with_fill(self, kpis, cells):
        out = join(kpis, cells, on="cell", how="left")
        assert len(out) == 4
        row = {
            cell: postcode
            for cell, postcode in zip(out["cell"], out["postcode"])
        }
        assert row["z"] == ""

    def test_float_fill_is_nan(self):
        left = Frame({"k": ["a", "b"]})
        right = Frame({"k": ["a"], "v": [1.5]})
        out = join(left, right, on="k", how="left")
        values = dict(zip(out["k"], out["v"]))
        assert values["a"] == 1.5
        assert np.isnan(values["b"])

    def test_int_fill_is_minus_one(self):
        left = Frame({"k": ["a", "b"]})
        right = Frame({"k": ["a"], "v": np.array([3], dtype=np.int64)})
        out = join(left, right, on="k", how="left")
        values = dict(zip(out["k"], out["v"]))
        assert values["b"] == -1

    def test_empty_right(self):
        left = Frame({"k": ["a"], "x": [1]})
        right = Frame({"k": np.array([], dtype=str), "y": np.array([], dtype=float)})
        out = join(left, right, on="k", how="left")
        assert len(out) == 1
        assert np.isnan(out["y"][0])

    def test_preserves_left_row_order(self):
        """Regression: unmatched rows used to be appended after all
        matched rows, silently reordering the left frame."""
        left = Frame({"k": ["x", "a", "y", "b"], "pos": [0, 1, 2, 3]})
        right = Frame({"k": ["a", "b"], "v": [10.0, 20.0]})
        out = join(left, right, on="k", how="left")
        assert out["k"].tolist() == ["x", "a", "y", "b"]
        assert out["pos"].tolist() == [0, 1, 2, 3]
        filled = out["v"]
        assert np.isnan(filled[0]) and np.isnan(filled[2])
        assert filled[1] == 10.0 and filled[3] == 20.0

    def test_preserves_left_row_order_with_fanout(self):
        left = Frame({"k": ["z", "a"], "pos": [0, 1]})
        right = Frame({"k": ["a", "a"], "v": [1.0, 2.0]})
        out = join(left, right, on="k", how="left")
        assert out["pos"].tolist() == [0, 1, 1]
        assert np.isnan(out["v"][0])
        assert out["v"][1:].tolist() == [1.0, 2.0]

    def test_naive_oracle_preserves_left_row_order(self, monkeypatch):
        monkeypatch.setenv("REPRO_FRAMES_NAIVE", "1")
        left = Frame({"k": ["x", "a"], "pos": [0, 1]})
        right = Frame({"k": ["a"], "v": [10.0]})
        out = join(left, right, on="k", how="left")
        assert out["pos"].tolist() == [0, 1]
        assert np.isnan(out["v"][0]) and out["v"][1] == 10.0
