"""Unit tests for the Frame column-store."""

import numpy as np
import pytest

from repro.frames import Frame, concat


@pytest.fixture()
def sample() -> Frame:
    return Frame(
        {
            "cell": ["a", "b", "a", "c"],
            "volume": [1.0, 2.0, 3.0, 4.0],
            "users": [10, 20, 30, 40],
        }
    )


class TestConstruction:
    def test_empty_frame(self):
        frame = Frame()
        assert len(frame) == 0
        assert frame.column_names == ()

    def test_column_lengths_must_match(self):
        with pytest.raises(ValueError, match="unequal lengths"):
            Frame({"a": [1, 2], "b": [1]})

    def test_scalar_column_rejected(self):
        with pytest.raises(ValueError, match="scalar"):
            Frame({"a": 3})

    def test_2d_column_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            Frame({"a": np.zeros((2, 2))})

    def test_object_strings_normalized(self):
        frame = Frame({"s": np.array(["x", "yy"], dtype=object)})
        assert frame["s"].dtype.kind == "U"

    def test_from_rows(self):
        frame = Frame.from_rows([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert frame["a"].tolist() == [1, 2]
        assert frame["b"].tolist() == ["x", "y"]

    def test_from_rows_empty(self):
        frame = Frame.from_rows([], columns=["a", "b"])
        assert frame.column_names == ("a", "b")
        assert len(frame) == 0

    def test_from_rows_fixed_schema(self):
        frame = Frame.from_rows(
            [{"a": 1, "b": 2, "c": 3}], columns=["c", "a"]
        )
        assert frame.column_names == ("c", "a")


class TestAccess:
    def test_getitem_missing_column_raises(self, sample):
        with pytest.raises(KeyError, match="available"):
            sample["nope"]

    def test_contains(self, sample):
        assert "cell" in sample
        assert "nope" not in sample

    def test_row(self, sample):
        assert sample.row(1) == {"cell": "b", "volume": 2.0, "users": 20}

    def test_row_out_of_range(self, sample):
        with pytest.raises(IndexError):
            sample.row(4)

    def test_negative_row(self, sample):
        assert sample.row(-1)["cell"] == "c"

    def test_iter_rows(self, sample):
        rows = list(sample.iter_rows())
        assert len(rows) == 4
        assert rows[0]["users"] == 10

    def test_repr_mentions_schema(self, sample):
        assert "volume" in repr(sample)
        assert "4 rows" in repr(sample)


class TestRelationalOps:
    def test_filter(self, sample):
        out = sample.filter(sample["volume"] > 1.5)
        assert out["cell"].tolist() == ["b", "a", "c"]

    def test_filter_requires_bool(self, sample):
        with pytest.raises(TypeError, match="boolean"):
            sample.filter(np.array([1, 0, 1, 0]))

    def test_filter_wrong_length(self, sample):
        with pytest.raises(ValueError, match="does not match"):
            sample.filter(np.array([True, False]))

    def test_select_reorders(self, sample):
        out = sample.select(["users", "cell"])
        assert out.column_names == ("users", "cell")

    def test_drop(self, sample):
        out = sample.drop(["users"])
        assert out.column_names == ("cell", "volume")

    def test_drop_missing_raises(self, sample):
        with pytest.raises(KeyError):
            sample.drop(["nope"])

    def test_take(self, sample):
        out = sample.take([3, 0])
        assert out["cell"].tolist() == ["c", "a"]

    def test_head(self, sample):
        assert len(sample.head(2)) == 2
        assert len(sample.head(100)) == 4

    def test_sort_by_single(self, sample):
        out = sample.sort_by("cell")
        assert out["cell"].tolist() == ["a", "a", "b", "c"]

    def test_sort_by_multi_primary_first(self):
        frame = Frame({"k": ["b", "a", "b", "a"], "v": [2, 2, 1, 1]})
        out = frame.sort_by(["k", "v"])
        assert out["k"].tolist() == ["a", "a", "b", "b"]
        assert out["v"].tolist() == [1, 2, 1, 2]

    def test_sort_descending(self, sample):
        out = sample.sort_by("volume", descending=True)
        assert out["volume"].tolist() == [4.0, 3.0, 2.0, 1.0]

    def test_sort_no_keys(self, sample):
        with pytest.raises(ValueError):
            sample.sort_by([])

    def test_unique(self, sample):
        assert sample.unique("cell").tolist() == ["a", "b", "c"]

    def test_mask_isin(self, sample):
        mask = sample.mask_isin("cell", ["a", "c"])
        assert mask.tolist() == [True, False, True, True]

    def test_with_column_adds(self, sample):
        out = sample.with_column("double", sample["volume"] * 2)
        assert out["double"].tolist() == [2.0, 4.0, 6.0, 8.0]
        assert "double" not in sample

    def test_with_column_replaces(self, sample):
        out = sample.with_column("users", [0, 0, 0, 0])
        assert out["users"].tolist() == [0, 0, 0, 0]

    def test_with_column_length_checked(self, sample):
        with pytest.raises(ValueError, match="length"):
            sample.with_column("x", [1, 2])

    def test_rename(self, sample):
        out = sample.rename({"volume": "dl_volume"})
        assert "dl_volume" in out
        assert "volume" not in out

    def test_rename_missing_raises(self, sample):
        with pytest.raises(KeyError):
            sample.rename({"nope": "x"})


class TestEquality:
    def test_equal_frames(self):
        left = Frame({"a": [1, 2]})
        right = Frame({"a": [1, 2]})
        assert left == right

    def test_unequal_values(self):
        assert Frame({"a": [1]}) != Frame({"a": [2]})

    def test_unequal_schema(self):
        assert Frame({"a": [1]}) != Frame({"b": [1]})

    def test_eq_non_frame(self):
        assert Frame({"a": [1]}) != 42


class TestConcat:
    def test_concat_two(self, sample):
        out = concat([sample, sample])
        assert len(out) == 8
        assert out["cell"].tolist()[:4] == out["cell"].tolist()[4:]

    def test_concat_empty_list(self):
        assert len(concat([])) == 0

    def test_concat_schema_mismatch(self):
        with pytest.raises(ValueError, match="schema"):
            concat([Frame({"a": [1]}), Frame({"b": [1]})])


class TestPretty:
    def test_pretty_contains_header_and_values(self, sample):
        text = sample.to_pretty()
        assert "cell" in text
        assert "volume" in text

    def test_pretty_truncates(self, sample):
        text = sample.to_pretty(max_rows=2)
        assert "more rows" in text

    def test_pretty_empty(self):
        assert Frame().to_pretty() == "(empty frame)"


class TestDescribe:
    def test_numeric_columns_only(self, sample):
        stats = sample.describe()
        assert stats["column"].tolist() == ["volume", "users"]

    def test_statistics_correct(self, sample):
        stats = sample.describe()
        row = stats.row(0)
        assert row["count"] == 4
        assert row["mean"] == pytest.approx(2.5)
        assert row["min"] == 1.0
        assert row["max"] == 4.0
        assert row["median"] == pytest.approx(2.5)

    def test_empty_numeric_column(self):
        frame = Frame({"v": np.array([], dtype=float)})
        stats = frame.describe()
        assert stats.row(0)["count"] == 0

    def test_no_numeric_columns(self):
        frame = Frame({"s": ["a", "b"]})
        assert len(frame.describe()) == 0
