"""Tests for rolling/seasonality helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frames.timeseries import (
    deseasonalize,
    rolling_mean,
    rolling_median,
    weekly_seasonality,
)


class TestRolling:
    def test_constant_series_unchanged(self):
        values = np.full(10, 3.0)
        assert np.allclose(rolling_mean(values), 3.0)
        assert np.allclose(rolling_median(values), 3.0)

    def test_window_one_identity(self):
        values = np.array([1.0, 5.0, 2.0])
        assert np.allclose(rolling_mean(values, 1), values)
        assert np.allclose(rolling_median(values, 1), values)

    def test_centered_mean(self):
        values = np.array([0.0, 3.0, 6.0])
        out = rolling_mean(values, 3)
        assert out[1] == pytest.approx(3.0)
        assert out[0] == pytest.approx(1.5)  # partial edge window

    def test_median_robust_to_spike(self):
        values = np.array([1.0, 1.0, 100.0, 1.0, 1.0])
        out = rolling_median(values, 5)
        assert out[2] == pytest.approx(1.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            rolling_mean(np.ones(3), 0)

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            rolling_mean(np.ones((2, 2)), 3)

    @given(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3),
            min_size=3, max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_rolling_mean_within_range(self, raw):
        values = np.array(raw)
        out = rolling_mean(values, 7)
        assert out.min() >= values.min() - 1e-9
        assert out.max() <= values.max() + 1e-9


class TestSeasonality:
    def make_weekly_series(self, weeks=6):
        weekdays = np.tile(np.arange(7), weeks)
        # Weekends systematically lower.
        values = np.where(weekdays >= 5, 5.0, 10.0)
        return values.astype(float), weekdays

    def test_detects_weekend_dip(self):
        values, weekdays = self.make_weekly_series()
        pattern = weekly_seasonality(values, weekdays)
        assert pattern[5] < pattern[1]
        assert pattern[6] < pattern[1]

    def test_deseasonalize_flattens(self):
        values, weekdays = self.make_weekly_series()
        flat = deseasonalize(values, weekdays)
        middle = flat[7:-7]
        assert middle.std() < values[7:-7].std()

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            weekly_seasonality(np.ones(5), np.zeros(4, dtype=int))

