"""Unit tests for CSV round-trip."""

import numpy as np
import pytest

from repro.frames import Frame, read_csv, write_csv
from repro.frames.csvio import dumps_csv, loads_csv


@pytest.fixture()
def sample() -> Frame:
    return Frame(
        {
            "cell": ["a", "b"],
            "volume": [1.5, 2.25],
            "users": np.array([3, 4], dtype=np.int64),
        }
    )


class TestRoundTrip:
    def test_file_round_trip(self, sample, tmp_path):
        path = tmp_path / "feed.csv"
        write_csv(sample, path)
        back = read_csv(path)
        assert back == sample

    def test_string_round_trip(self, sample):
        assert loads_csv(dumps_csv(sample)) == sample

    def test_dtypes_inferred(self, sample):
        back = loads_csv(dumps_csv(sample))
        assert back["users"].dtype == np.int64
        assert back["volume"].dtype == np.float64
        assert back["cell"].dtype.kind == "U"

    def test_empty_text(self):
        assert len(loads_csv("")) == 0

    def test_header_only(self):
        frame = loads_csv("a,b\n")
        assert frame.column_names == ("a", "b")
        assert len(frame) == 0

    def test_ragged_row_raises(self):
        with pytest.raises(ValueError, match="fields"):
            loads_csv("a,b\n1\n")

    def test_mixed_ints_and_floats_become_float(self):
        frame = loads_csv("x\n1\n2.5\n")
        assert frame["x"].dtype == np.float64

    def test_non_numeric_stays_string(self):
        frame = loads_csv("x\n1\nhello\n")
        assert frame["x"].dtype.kind == "U"


class TestMissingValues:
    """Regression: one empty cell used to demote a whole numeric column
    to strings, and bare "nan"/"inf" text parsed as floats."""

    def test_empty_cell_in_float_column_becomes_nan(self):
        frame = loads_csv("x\n1.5\n\n2.5\n")
        assert frame["x"].dtype == np.float64
        assert frame["x"][0] == 1.5
        assert np.isnan(frame["x"][1])
        assert frame["x"][2] == 2.5

    def test_empty_cell_promotes_int_column_to_float(self):
        frame = loads_csv("x\n1\n\n3\n")
        assert frame["x"].dtype == np.float64
        assert np.isnan(frame["x"][1])
        assert frame["x"][[0, 2]].tolist() == [1.0, 3.0]

    def test_nan_string_stays_string(self):
        frame = loads_csv("x\n1.5\nnan\n")
        assert frame["x"].dtype.kind == "U"
        assert frame["x"].tolist() == ["1.5", "nan"]

    def test_inf_strings_stay_strings(self):
        for text in ("inf", "-inf", "Infinity"):
            frame = loads_csv(f"x\n1.0\n{text}\n")
            assert frame["x"].dtype.kind == "U", text

    def test_underscored_numbers_stay_strings(self):
        frame = loads_csv("x\n1_000\n2\n")
        assert frame["x"].dtype.kind == "U"

    def test_nan_round_trip(self):
        frame = Frame({"v": [1.0, np.nan, 3.0]})
        back = loads_csv(dumps_csv(frame))
        assert back["v"].dtype == np.float64
        assert back["v"][0] == 1.0 and back["v"][2] == 3.0
        assert np.isnan(back["v"][1])

    def test_all_empty_column_stays_string(self):
        frame = loads_csv("x,y\n,1\n,2\n")
        assert frame["x"].dtype.kind == "U"
        assert frame["y"].dtype == np.int64

    def test_scientific_notation_still_floats(self):
        frame = loads_csv("x\n1e3\n-2.5E-8\n.5\n+3.\n")
        assert frame["x"].dtype == np.float64
        assert frame["x"][0] == 1e3


class TestEdgeCases:
    def test_commas_in_strings_quoted(self):
        frame = Frame({"s": ["a,b", "plain"]})
        assert loads_csv(dumps_csv(frame)) == frame

    def test_quotes_in_strings(self):
        frame = Frame({"s": ['say "hi"', "x"]})
        assert loads_csv(dumps_csv(frame)) == frame

    def test_bool_round_trip(self):
        frame = Frame({"flag": np.array([True, False, True])})
        back = loads_csv(dumps_csv(frame))
        assert back["flag"].dtype == bool
        assert back["flag"].tolist() == [True, False, True]

    def test_bool_like_strings_with_other_values_stay_strings(self):
        frame = loads_csv("x\nTrue\nmaybe\n")
        assert frame["x"].dtype.kind == "U"

    def test_negative_and_scientific_floats(self):
        frame = Frame({"v": [-1.5, 2.5e-8]})
        back = loads_csv(dumps_csv(frame))
        assert np.allclose(back["v"], frame["v"])
