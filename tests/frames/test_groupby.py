"""Unit tests for group-by aggregation."""

import numpy as np
import pytest

from repro.frames import Frame, group_by


@pytest.fixture()
def kpis() -> Frame:
    return Frame(
        {
            "cell": ["a", "a", "a", "b", "b", "c"],
            "day": [1, 1, 2, 1, 2, 1],
            "volume": [1.0, 3.0, 5.0, 2.0, 4.0, 10.0],
            "users": [1, 2, 3, 4, 5, 6],
        }
    )


class TestBasics:
    def test_num_groups_single_key(self, kpis):
        assert group_by(kpis, "cell").num_groups == 3

    def test_num_groups_multi_key(self, kpis):
        assert group_by(kpis, ["cell", "day"]).num_groups == 5

    def test_requires_keys(self, kpis):
        with pytest.raises(ValueError):
            group_by(kpis, [])

    def test_sizes(self, kpis):
        sizes = group_by(kpis, "cell").sizes()
        assert sizes["cell"].tolist() == ["a", "b", "c"]
        assert sizes["count"].tolist() == [3, 2, 1]

    def test_empty_frame(self):
        frame = Frame({"k": np.array([], dtype=str), "v": np.array([], dtype=float)})
        out = group_by(frame, "k").agg(total=("v", "sum"))
        assert len(out) == 0


class TestAggregations:
    def test_sum(self, kpis):
        out = group_by(kpis, "cell").agg(total=("volume", "sum"))
        assert out["total"].tolist() == [9.0, 6.0, 10.0]

    def test_mean(self, kpis):
        out = group_by(kpis, "cell").agg(avg=("volume", "mean"))
        assert out["avg"].tolist() == [3.0, 3.0, 10.0]

    def test_median(self, kpis):
        out = group_by(kpis, "cell").agg(med=("volume", "median"))
        assert out["med"].tolist() == [3.0, 3.0, 10.0]

    def test_min_max(self, kpis):
        out = group_by(kpis, "cell").agg(
            lo=("volume", "min"), hi=("volume", "max")
        )
        assert out["lo"].tolist() == [1.0, 2.0, 10.0]
        assert out["hi"].tolist() == [5.0, 4.0, 10.0]

    def test_count(self, kpis):
        out = group_by(kpis, "cell").agg(n=("volume", "count"))
        assert out["n"].tolist() == [3, 2, 1]

    def test_std_matches_numpy(self, kpis):
        out = group_by(kpis, "cell").agg(sd=("volume", "std"))
        expected = np.std([1.0, 3.0, 5.0])
        assert out["sd"][0] == pytest.approx(expected)

    def test_first_last(self, kpis):
        out = group_by(kpis, "cell").agg(
            first_day=("day", "first"), last_day=("day", "last")
        )
        assert out["first_day"].tolist() == [1, 1, 1]
        assert out["last_day"].tolist() == [2, 2, 1]

    def test_nunique(self, kpis):
        out = group_by(kpis, "cell").agg(days=("day", "nunique"))
        assert out["days"].tolist() == [2, 2, 1]

    def test_percentile(self, kpis):
        out = group_by(kpis, "cell").agg(p90=("volume", ("percentile", 90)))
        assert out["p90"][0] == pytest.approx(np.percentile([1, 3, 5], 90))

    def test_callable(self, kpis):
        out = group_by(kpis, "cell").agg(rng=("volume", np.ptp))
        assert out["rng"].tolist() == [4.0, 2.0, 0.0]

    def test_unknown_agg_raises(self, kpis):
        with pytest.raises(ValueError, match="unknown aggregation"):
            group_by(kpis, "cell").agg(x=("volume", "nope"))

    def test_agg_without_specs_raises(self, kpis):
        with pytest.raises(ValueError):
            group_by(kpis, "cell").agg()

    def test_multi_key_agg(self, kpis):
        out = group_by(kpis, ["cell", "day"]).agg(total=("volume", "sum"))
        by_key = {
            (cell, day): value
            for cell, day, value in zip(out["cell"], out["day"], out["total"])
        }
        assert by_key[("a", 1)] == 4.0
        assert by_key[("b", 2)] == 4.0

    def test_agg_matches_numpy_on_random_data(self):
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 20, size=500)
        values = rng.normal(size=500)
        frame = Frame({"k": keys, "v": values})
        out = group_by(frame, "k").agg(
            med=("v", "median"), total=("v", "sum")
        )
        for key, med, total in zip(out["k"], out["med"], out["total"]):
            chunk = values[keys == key]
            assert med == pytest.approx(np.median(chunk))
            assert total == pytest.approx(chunk.sum())


class TestSumDtypePromotion:
    """Regression: ``sum`` must accumulate in a wide dtype.

    ``np.add.reduceat`` in the input dtype turned a bool sum into a
    logical OR and let int32 sums wrap around.
    """

    def test_bool_sum_counts_trues(self):
        frame = Frame(
            {"k": [0, 0, 0, 1], "flag": np.array([True, True, True, False])}
        )
        out = group_by(frame, "k").agg(trues=("flag", "sum"))
        assert out["trues"].tolist() == [3, 0]
        assert out["trues"].dtype == np.int64

    def test_int32_sum_does_not_overflow(self):
        big = np.array([2_000_000_000, 2_000_000_000], dtype=np.int32)
        frame = Frame({"k": [0, 0], "v": big})
        out = group_by(frame, "k").agg(total=("v", "sum"))
        assert out["total"].tolist() == [4_000_000_000]
        assert out["total"].dtype == np.int64

    def test_uint32_sum_accumulates_in_uint64(self):
        big = np.array([4_000_000_000, 4_000_000_000], dtype=np.uint32)
        frame = Frame({"k": [0, 0], "v": big})
        out = group_by(frame, "k").agg(total=("v", "sum"))
        assert out["total"].tolist() == [8_000_000_000]
        assert out["total"].dtype == np.uint64

    def test_float32_sum_accumulates_in_float64(self):
        frame = Frame(
            {"k": [0, 0], "v": np.array([1e8, 1.0], dtype=np.float32)}
        )
        out = group_by(frame, "k").agg(total=("v", "sum"))
        assert out["total"].dtype == np.float64
        assert out["total"][0] == 1e8 + 1.0


class TestEmptyFrameDtypes:
    """Regression: aggregating zero groups must use the result dtype
    the non-empty path would produce (mean of ints is float64, not
    int64)."""

    @staticmethod
    def empty(dtype=np.int64):
        return Frame(
            {"k": np.array([], dtype=str), "v": np.array([], dtype=dtype)}
        )

    def test_mean_and_std_are_float64(self):
        out = group_by(self.empty(), "k").agg(
            avg=("v", "mean"), sd=("v", "std")
        )
        assert out["avg"].dtype == np.float64
        assert out["sd"].dtype == np.float64

    def test_percentile_is_float64(self):
        out = group_by(self.empty(), "k").agg(p=("v", ("percentile", 75)))
        assert out["p"].dtype == np.float64

    def test_median_of_ints_is_float64(self):
        out = group_by(self.empty(), "k").agg(med=("v", "median"))
        assert out["med"].dtype == np.float64

    def test_median_of_float32_stays_float32(self):
        out = group_by(self.empty(np.float32), "k").agg(med=("v", "median"))
        assert out["med"].dtype == np.float32

    def test_sum_of_bools_is_int64(self):
        out = group_by(self.empty(bool), "k").agg(total=("v", "sum"))
        assert out["total"].dtype == np.int64

    def test_count_and_nunique_are_int64(self):
        out = group_by(self.empty(), "k").agg(
            n=("v", "count"), distinct=("v", "nunique")
        )
        assert out["n"].dtype == np.int64
        assert out["distinct"].dtype == np.int64

    def test_min_keeps_input_dtype(self):
        out = group_by(self.empty(np.int32), "k").agg(lo=("v", "min"))
        assert out["lo"].dtype == np.int32


class TestApply:
    def test_apply_returns_keys_plus_values(self, kpis):
        out = group_by(kpis, "cell").apply(
            lambda group: {"span": float(group["volume"].max() - group["volume"].min())}
        )
        assert out["cell"].tolist() == ["a", "b", "c"]
        assert out["span"].tolist() == [4.0, 2.0, 0.0]

    def test_apply_empty(self):
        frame = Frame({"k": np.array([], dtype=str)})
        out = group_by(frame, "k").apply(lambda g: {"n": len(g)})
        assert len(out) == 0

    def test_group_indices_cover_all_rows(self, kpis):
        order, starts, ends = group_by(kpis, "cell").group_indices()
        assert sorted(order.tolist()) == list(range(6))
        assert starts[0] == 0
        assert ends[-1] == 6
