"""Differential tests: vectorized kernels vs the naive reference oracle.

Every vectorized kernel keeps its original per-group / per-row Python
implementation behind the ``REPRO_FRAMES_NAIVE=1`` environment switch.
These property tests run the same operation in both modes and require
the outputs to be **bitwise identical** (order statistics, joins,
pivots) or equal within float round-off (means, whose summation order
legitimately differs).
"""

import os
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baseline import weekly_mean, weekly_mean_stack, weekly_median_delta
from repro.core.performance import _grouped_weekly_delta
from repro.frames import Frame, group_by, join, pivot
from repro.frames.kernels import use_naive


@contextmanager
def frames_mode(naive: bool):
    previous = os.environ.get("REPRO_FRAMES_NAIVE")
    os.environ["REPRO_FRAMES_NAIVE"] = "1" if naive else "0"
    try:
        yield
    finally:
        if previous is None:
            del os.environ["REPRO_FRAMES_NAIVE"]
        else:
            os.environ["REPRO_FRAMES_NAIVE"] = previous


def naive_mode():
    return frames_mode(naive=True)


def both_modes(operation):
    """Run ``operation`` vectorized and naive; return both results.

    Each mode is forced explicitly, so the suite gives the same answer
    whether or not ``REPRO_FRAMES_NAIVE`` is set in the environment.
    """
    with frames_mode(naive=False):
        assert not use_naive()
        vectorized = operation()
    with frames_mode(naive=True):
        naive = operation()
    return vectorized, naive


def assert_frames_bitwise(actual: Frame, expected: Frame) -> None:
    assert actual.column_names == expected.column_names
    for name in expected.column_names:
        left, right = actual[name], expected[name]
        assert left.dtype == right.dtype, name
        if np.issubdtype(left.dtype, np.floating):
            matches = (left == right) | (np.isnan(left) & np.isnan(right))
            assert matches.all(), (name, left, right)
        else:
            assert np.array_equal(left, right), (name, left, right)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
small_keys = st.integers(min_value=0, max_value=7)
string_keys = st.sampled_from(["N1", "EC1", "SW3", "M4", "LS9"])


@st.composite
def keyed_values(draw, min_size=1, max_size=60):
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    keys = draw(
        st.lists(small_keys, min_size=size, max_size=size)
    )
    values = draw(
        st.lists(finite_floats, min_size=size, max_size=size)
    )
    return np.array(keys, dtype=np.int64), np.array(values)


# ----------------------------------------------------------------------
# GroupBy aggregations
# ----------------------------------------------------------------------
class TestGroupByDifferential:
    @given(data=keyed_values())
    @settings(max_examples=120, deadline=None)
    def test_order_statistics_bitwise(self, data):
        keys, values = data
        frame = Frame({"k": keys, "v": values})

        def run():
            return group_by(frame, "k").agg(
                med=("v", "median"),
                p25=("v", ("percentile", 25)),
                p90=("v", ("percentile", 90)),
                distinct=("v", "nunique"),
            )

        vectorized, naive = both_modes(run)
        assert_frames_bitwise(vectorized, naive)

    @given(data=keyed_values(), q=st.floats(min_value=0, max_value=100))
    @settings(max_examples=120, deadline=None)
    def test_arbitrary_percentile_bitwise(self, data, q):
        keys, values = data
        frame = Frame({"k": keys, "v": values})

        def run():
            return group_by(frame, "k").agg(p=("v", ("percentile", q)))

        vectorized, naive = both_modes(run)
        assert_frames_bitwise(vectorized, naive)

    @given(data=keyed_values())
    @settings(max_examples=60, deadline=None)
    def test_reduceat_aggregations_bitwise(self, data):
        keys, values = data
        frame = Frame({"k": keys, "v": values})

        def run():
            return group_by(frame, "k").agg(
                total=("v", "sum"), lo=("v", "min"), hi=("v", "max"),
                n=("v", "count"), head=("v", "first"), tail=("v", "last"),
            )

        vectorized, naive = both_modes(run)
        assert_frames_bitwise(vectorized, naive)

    @given(
        size=st.integers(min_value=1, max_value=40),
        nan_positions=st.sets(st.integers(min_value=0, max_value=39)),
    )
    @settings(max_examples=60, deadline=None)
    def test_nan_groups_match(self, size, nan_positions):
        rng = np.random.default_rng(size)
        values = rng.normal(size=size)
        for position in nan_positions:
            if position < size:
                values[position] = np.nan
        frame = Frame({"k": rng.integers(0, 4, size), "v": values})

        def run():
            with np.errstate(invalid="ignore"):
                import warnings

                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    return group_by(frame, "k").agg(
                        med=("v", "median"),
                        p=("v", ("percentile", 60)),
                        distinct=("v", "nunique"),
                    )

        vectorized, naive = both_modes(run)
        assert_frames_bitwise(vectorized, naive)

    def test_string_nunique_matches(self):
        frame = Frame(
            {"k": [1, 1, 1, 2, 2], "s": ["a", "b", "a", "c", "c"]}
        )

        def run():
            return group_by(frame, "k").agg(distinct=("s", "nunique"))

        vectorized, naive = both_modes(run)
        assert_frames_bitwise(vectorized, naive)
        assert vectorized["distinct"].tolist() == [2, 1]

    def test_float32_median_keeps_dtype(self):
        frame = Frame(
            {"k": [0, 0, 1], "v": np.array([1.0, 2.0, 5.0], dtype=np.float32)}
        )

        def run():
            return group_by(frame, "k").agg(med=("v", "median"))

        vectorized, naive = both_modes(run)
        assert_frames_bitwise(vectorized, naive)
        assert vectorized["med"].dtype == np.float32


# ----------------------------------------------------------------------
# Joins
# ----------------------------------------------------------------------
@st.composite
def join_inputs(draw):
    left_size = draw(st.integers(min_value=0, max_value=25))
    right_size = draw(st.integers(min_value=0, max_value=25))
    left = Frame(
        {
            "k": np.array(
                draw(st.lists(small_keys, min_size=left_size,
                              max_size=left_size)),
                dtype=np.int64,
            ),
            "x": np.array(
                draw(st.lists(finite_floats, min_size=left_size,
                              max_size=left_size))
            ),
        }
    )
    right = Frame(
        {
            "k": np.array(
                draw(st.lists(small_keys, min_size=right_size,
                              max_size=right_size)),
                dtype=np.int64,
            ),
            "y": np.array(
                draw(st.lists(finite_floats, min_size=right_size,
                              max_size=right_size))
            ),
            "label": np.array(
                draw(st.lists(string_keys, min_size=right_size,
                              max_size=right_size)),
                dtype=str,
            ),
            "count": np.array(
                draw(st.lists(st.integers(0, 1000), min_size=right_size,
                              max_size=right_size)),
                dtype=np.int64,
            ),
        }
    )
    return left, right


class TestJoinDifferential:
    @given(frames=join_inputs(), how=st.sampled_from(["inner", "left"]))
    @settings(max_examples=120, deadline=None)
    def test_single_key_bitwise(self, frames, how):
        left, right = frames
        vectorized, naive = both_modes(
            lambda: join(left, right, on="k", how=how)
        )
        assert_frames_bitwise(vectorized, naive)

    @given(frames=join_inputs(), how=st.sampled_from(["inner", "left"]))
    @settings(max_examples=60, deadline=None)
    def test_multi_key_bitwise(self, frames, how):
        left, right = frames
        # Second key: reuse the float column bucketed to ints so both
        # sides share a small domain with duplicates.
        left = left.with_column(
            "k2", (np.abs(left["x"]) % 3).astype(np.int64)
        )
        right = right.with_column(
            "k2", (np.abs(right["y"]) % 3).astype(np.int64)
        )
        vectorized, naive = both_modes(
            lambda: join(left, right, on=["k", "k2"], how=how)
        )
        assert_frames_bitwise(vectorized, naive)

    @given(frames=join_inputs())
    @settings(max_examples=60, deadline=None)
    def test_suffix_collision_bitwise(self, frames):
        left, right = frames
        left = left.with_column("label", np.full(len(left), "keep"))
        vectorized, naive = both_modes(
            lambda: join(left, right, on="k", how="left")
        )
        assert_frames_bitwise(vectorized, naive)
        if len(vectorized):
            assert "label_right" in vectorized


# ----------------------------------------------------------------------
# Pivot
# ----------------------------------------------------------------------
class TestPivotDifferential:
    @given(
        data=keyed_values(min_size=1, max_size=50),
        aggregate=st.sampled_from(["sum", "mean", "median", "count"]),
    )
    @settings(max_examples=80, deadline=None)
    def test_pivot_bitwise(self, data, aggregate):
        keys, values = data
        rng = np.random.default_rng(keys.size)
        frame = Frame(
            {
                "row": keys,
                "col": rng.integers(0, 5, keys.size),
                "val": values,
            }
        )
        vectorized, naive = both_modes(
            lambda: pivot(frame, index="row", columns="col", values="val",
                          aggregate=aggregate)
        )
        assert_frames_bitwise(vectorized, naive)


# ----------------------------------------------------------------------
# Weekly reductions
# ----------------------------------------------------------------------
@st.composite
def weekly_observations(draw, max_size=80):
    size = draw(st.integers(min_value=1, max_value=max_size))
    weeks = np.array(
        draw(st.lists(st.integers(9, 14), min_size=size, max_size=size)),
        dtype=np.int64,
    )
    values = np.array(
        draw(
            st.lists(
                st.floats(min_value=0.1, max_value=1e6, allow_nan=False),
                min_size=size,
                max_size=size,
            )
        )
    )
    return values, weeks


class TestWeeklyDifferential:
    @given(data=weekly_observations())
    @settings(max_examples=100, deadline=None)
    def test_weekly_mean_close(self, data):
        values, weeks = data
        (v_weeks, v_means), (n_weeks, n_means) = both_modes(
            lambda: weekly_mean(values, weeks)
        )
        assert np.array_equal(v_weeks, n_weeks)
        # Summation order differs (reduceat vs pairwise mean), so the
        # comparison is allclose, not bitwise.
        np.testing.assert_allclose(v_means, n_means, rtol=1e-12)

    @given(
        data=weekly_observations(),
        percentile=st.floats(min_value=0, max_value=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_weekly_median_delta_bitwise(self, data, percentile):
        values, weeks = data
        weeks[0] = 9  # guarantee a baseline observation

        def run():
            return weekly_median_delta(values, weeks, percentile=percentile)

        (v_weeks, v_delta), (n_weeks, n_delta) = both_modes(run)
        assert np.array_equal(v_weeks, n_weeks)
        assert np.array_equal(v_delta, n_delta)

    @given(data=weekly_observations())
    @settings(max_examples=50, deadline=None)
    def test_weekly_mean_stack_matches_rows(self, data):
        values, weeks = data
        stacked = np.stack([values, values * 2.0, values - 1.0])
        s_weeks, s_means = weekly_mean_stack(stacked, weeks)
        for row in range(stacked.shape[0]):
            r_weeks, r_means = weekly_mean(stacked[row], weeks)
            assert np.array_equal(s_weeks, r_weeks)
            assert np.array_equal(s_means[row], r_means)

    @given(data=weekly_observations())
    @settings(max_examples=60, deadline=None)
    def test_grouped_weekly_delta_bitwise(self, data):
        values, weeks = data
        rng = np.random.default_rng(values.size)
        labels = np.array(["A", "B", "C"])[rng.integers(0, 3, values.size)]
        # Guarantee every label has a baseline-week observation so the
        # naive and vectorized paths both succeed.
        for label in "ABC":
            hit = np.flatnonzero(labels == label)
            if hit.size:
                weeks[hit[0]] = 9

        def run():
            return _grouped_weekly_delta(
                values, weeks, labels, None, baseline_week=9,
                percentile=50.0,
            )

        vectorized, naive = both_modes(run)
        assert len(vectorized) == len(naive)
        for (v_name, v_weeks, v_delta), (n_name, n_weeks, n_delta) in zip(
            vectorized, naive
        ):
            assert v_name == n_name
            assert np.array_equal(v_weeks, n_weeks)
            assert np.array_equal(v_delta, n_delta)
