"""Cross-cutting property tests for the simulation substrate.

These verify *model* invariants — monotone responses, conservation,
bounds — that must hold for any parameterization, not just the
calibrated one.
"""

import datetime as dt

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility.pandemic import PandemicTimeline
from repro.network.interconnect import InterconnectSettings, VoiceInterconnect
from repro.network.scheduler import CellScheduler
from repro.traffic.applications import mix_summary
from repro.traffic.demand import DemandModel
from repro.traffic.voice import VoiceModel

dates = st.dates(
    min_value=dt.date(2020, 2, 3), max_value=dt.date(2020, 5, 10)
)


class TestTimelineProperties:
    @given(dates)
    @settings(max_examples=80, deadline=None)
    def test_restriction_in_unit_interval(self, date):
        timeline = PandemicTimeline()
        level = timeline.restriction_level(date)
        assert 0.0 <= level <= 1.0

    @given(dates, dates)
    @settings(max_examples=80, deadline=None)
    def test_restriction_monotone_until_relaxation(self, first, second):
        timeline = PandemicTimeline()
        low, high = sorted((first, second))
        if high <= timeline.relaxation_start:
            assert timeline.restriction_level(
                low
            ) <= timeline.restriction_level(high)

    @given(dates)
    @settings(max_examples=80, deadline=None)
    def test_regional_multiplier_bounded(self, date):
        timeline = PandemicTimeline()
        for region in ("London", "North West", "South East", "Wales"):
            multiplier = timeline.regional_multiplier(region, date)
            assert 0.5 <= multiplier <= 1.0


class TestMixProperties:
    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_mix_outputs_bounded(self, restriction):
        mix = mix_summary(restriction)
        assert mix["dl_demand"] > 0
        assert 0 < mix["ul_dl_ratio"] < 1
        assert 0 < mix["home_ul_dl_ratio"] < 1
        assert 0 < mix["home_cellular_share"] < 1
        assert mix["app_rate_mbps"] > 0

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_demand_monotone_in_restriction(self, first, second):
        low, high = sorted((first, second))
        assert mix_summary(low)["dl_demand"] <= mix_summary(high)[
            "dl_demand"
        ] + 1e-12


class TestDemandModelProperties:
    @given(dates)
    @settings(max_examples=60, deadline=None)
    def test_day_parameters_bounded(self, date):
        model = DemandModel(PandemicTimeline())
        params = model.day_parameters(date)
        assert 0 < params.home_cellular_share < 1
        assert 0 < params.home_activity <= 1
        assert params.poor_wifi_activity >= params.home_activity
        assert params.demand_multiplier > 0

    @given(dates)
    @settings(max_examples=60, deadline=None)
    def test_blend_interpolates(self, date):
        model = DemandModel(PandemicTimeline())
        params = model.day_parameters(date)
        share, activity = params.blended_home_factors(
            np.array([0.0, 0.5, 1.0])
        )
        assert share[0] >= share[1] >= share[2]
        assert activity[0] >= activity[1] >= activity[2]


class TestVoiceProperties:
    @given(dates)
    @settings(max_examples=60, deadline=None)
    def test_multiplier_at_least_pre_pandemic(self, date):
        model = VoiceModel(PandemicTimeline())
        assert model.minutes_multiplier(date) >= 1.0

    @given(dates)
    @settings(max_examples=60, deadline=None)
    def test_multiplier_bounded(self, date):
        model = VoiceModel(PandemicTimeline())
        assert model.minutes_multiplier(date) <= 3.0


class TestSchedulerProperties:
    @given(
        st.floats(min_value=0.0, max_value=1e5),
        st.floats(min_value=0.0, max_value=1e4),
        st.floats(min_value=0.0, max_value=500.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_kpis_bounded(self, offered_dl, offered_ul, active):
        scheduler = CellScheduler()
        out = scheduler.schedule_hour(
            capacity_mbps=np.array([120.0]),
            offered_dl_mb=np.array([offered_dl]),
            offered_ul_mb=np.array([offered_ul]),
            active_users=np.array([active]),
            app_rate_dl_mbps=np.array([4.0]),
        )
        assert 0 <= out.radio_load_pct[0] <= 100
        assert 0 <= out.served_dl_mb[0] <= offered_dl + 1e-9
        assert 0 <= out.user_dl_throughput_mbps[0] <= 4.0 + 1e-9
        assert 0 <= out.active_seconds[0] <= 3600

    @given(
        st.floats(min_value=0.0, max_value=2e4),
        st.floats(min_value=0.0, max_value=2e4),
    )
    @settings(max_examples=60, deadline=None)
    def test_load_monotone_in_traffic(self, first, second):
        scheduler = CellScheduler()
        low, high = sorted((first, second))

        def load(offered):
            return scheduler.schedule_hour(
                capacity_mbps=np.array([120.0]),
                offered_dl_mb=np.array([offered]),
                offered_ul_mb=np.array([0.0]),
                active_users=np.array([1.0]),
                app_rate_dl_mbps=np.array([4.0]),
            ).radio_load_pct[0]

        assert load(low) <= load(high) + 1e-9


class TestInterconnectProperties:
    @given(st.floats(min_value=0.0, max_value=5000.0))
    @settings(max_examples=60, deadline=None)
    def test_loss_is_a_rate(self, volume):
        link = VoiceInterconnect(
            InterconnectSettings(capacity_mb_per_day=1000.0)
        )
        loss = link.process_day(volume)
        assert 0.0 <= loss <= 1.0

    @given(
        st.floats(min_value=0.0, max_value=5000.0),
        st.floats(min_value=0.0, max_value=5000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_loss_monotone_in_offered_volume(self, first, second):
        low, high = sorted((first, second))

        def loss_for(volume):
            link = VoiceInterconnect(
                InterconnectSettings(
                    capacity_mb_per_day=1000.0, detection_days=10_000
                )
            )
            return link.process_day(volume)

        assert loss_for(low) <= loss_for(high) + 1e-12

    def test_upgrade_is_permanent(self):
        link = VoiceInterconnect(
            InterconnectSettings(
                capacity_mb_per_day=1000.0, detection_days=1
            )
        )
        link.process_day(3000.0)
        assert link.upgraded
        capacity = link.capacity_mb_per_day
        link.process_day(3000.0)
        assert link.capacity_mb_per_day == pytest.approx(capacity)
