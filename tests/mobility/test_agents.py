"""Unit tests for the agent population builder."""

import numpy as np
import pytest

from repro.geo import haversine_km
from repro.mobility import AnchorSlot, build_agents
from repro.mobility.agents import NUM_ANCHORS, WorkerType


@pytest.fixture(scope="module")
def agents(small_world):
    return small_world["agents"]


class TestAnchors:
    def test_shapes(self, agents):
        assert agents.anchor_sites.shape == (agents.num_users, NUM_ANCHORS)
        assert agents.anchor_districts.shape == (agents.num_users, NUM_ANCHORS)

    def test_home_anchor_is_home_site(self, agents):
        assert np.array_equal(
            agents.anchor_sites[:, AnchorSlot.HOME], agents.home_site
        )

    def test_only_study_users(self, agents, small_world):
        base = small_world["base"]
        assert agents.num_users == int(base.study_mask.sum())
        assert np.all(np.isin(agents.user_ids, base.study_user_ids()))

    def test_errand_close_to_home(self, agents, small_world):
        geography = small_world["geography"]
        lats = geography.district_lats
        lons = geography.district_lons
        home = agents.anchor_districts[:, AnchorSlot.HOME]
        errand = agents.anchor_districts[:, AnchorSlot.ERRAND]
        distances = haversine_km(
            lats[home], lons[home], lats[errand], lons[errand]
        )
        assert np.median(distances) < 10.0

    def test_trip_in_other_county(self, agents, small_world):
        geography = small_world["geography"]
        counties = np.array([d.county for d in geography.districts])
        home_counties = counties[agents.anchor_districts[:, AnchorSlot.HOME]]
        trip_counties = counties[agents.anchor_districts[:, AnchorSlot.TRIP]]
        assert np.mean(home_counties == trip_counties) < 0.02

    def test_relocation_secondary_same_district_as_primary(self, agents):
        primary = agents.anchor_districts[:, AnchorSlot.RELOC_PRIMARY]
        secondary = agents.anchor_districts[:, AnchorSlot.RELOC_SECONDARY]
        assert np.array_equal(primary, secondary)

    def test_work_farther_than_errand_on_average(self, agents, small_world):
        geography = small_world["geography"]
        lats = geography.district_lats
        lons = geography.district_lons
        home = agents.anchor_districts[:, AnchorSlot.HOME]

        def mean_distance(slot):
            target = agents.anchor_districts[:, slot]
            return haversine_km(
                lats[home], lons[home], lats[target], lons[target]
            ).mean()

        assert mean_distance(AnchorSlot.WORK) > mean_distance(AnchorSlot.ERRAND)
        assert mean_distance(AnchorSlot.TRIP) > mean_distance(AnchorSlot.WORK)

    def test_london_relocations_prefer_southern_leisure_counties(
        self, small_world
    ):
        geography = small_world["geography"]
        agents = small_world["agents"]
        counties = np.array([d.county for d in geography.districts])
        inner = agents.inner_london_mask
        destinations = counties[
            agents.anchor_districts[inner, AnchorSlot.RELOC_PRIMARY]
        ]
        __, counts = np.unique(destinations, return_counts=True)
        top = {
            county: count
            for county, count in zip(
                np.unique(destinations), counts
            )
        }
        # The paper's destinations should rank highly.
        expected = {"Hampshire", "Kent", "East Sussex", "Essex", "Surrey"}
        top_counties = sorted(top, key=top.get, reverse=True)[:6]
        assert expected & set(top_counties)


class TestTraits:
    def test_compliance_in_unit_interval(self, agents):
        assert agents.compliance.min() >= 0.0
        assert agents.compliance.max() <= 1.0
        assert 0.7 < agents.compliance.mean() < 0.9

    def test_worker_type_mix(self, agents):
        commuters = np.mean(agents.worker_type == WorkerType.COMMUTER)
        essential = np.mean(agents.worker_type == WorkerType.ESSENTIAL)
        assert commuters == pytest.approx(0.55, abs=0.05)
        assert essential == pytest.approx(0.15, abs=0.04)

    def test_inner_london_relocation_rate_near_10pct(self, agents):
        inner = agents.inner_london_mask
        assert inner.sum() > 100
        rate = agents.relocation_candidate[inner].mean()
        assert 0.06 < rate < 0.18

    def test_elsewhere_relocation_rate_low(self, agents):
        outside = ~agents.inner_london_mask
        rate = agents.relocation_candidate[outside].mean()
        assert rate < 0.05

    def test_students_more_common_in_cosmopolitan_homes(
        self, agents, small_world
    ):
        geography = small_world["geography"]
        from repro.geo import OacCluster

        home_oac = np.array(
            [geography.districts[d].oac for d in agents.home_district]
        )
        cosmo = home_oac == OacCluster.COSMOPOLITANS
        if cosmo.sum() > 50 and (~cosmo).sum() > 50:
            assert (
                agents.is_student[cosmo].mean()
                > agents.is_student[~cosmo].mean()
            )

    def test_deterministic(self, small_world):
        geography = small_world["geography"]
        topology = small_world["topology"]
        base = small_world["base"]
        first = build_agents(geography, topology, base, seed=7)
        second = build_agents(geography, topology, base, seed=7)
        assert np.array_equal(first.anchor_sites, second.anchor_sites)
        assert np.array_equal(first.compliance, second.compliance)
