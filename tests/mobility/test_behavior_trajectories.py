"""Unit tests for the behaviour model and dwell assembly."""

import datetime as dt

import numpy as np
import pytest

from repro.mobility import AnchorSlot, NUM_BINS
from repro.mobility.trajectories import BIN_SECONDS


def day_of(small_world, date):
    return small_world["calendar"].day_of(date)


class TestBehavior:
    def test_weekday_has_work(self, small_world):
        state = small_world["behavior"].day_state(
            day_of(small_world, dt.date(2020, 2, 25))
        )
        assert state.work_s.mean() > 3 * 3600

    def test_weekend_has_no_work(self, small_world):
        state = small_world["behavior"].day_state(
            day_of(small_world, dt.date(2020, 2, 29))
        )
        assert state.work_s.max() == 0.0

    def test_lockdown_cuts_work_and_social(self, small_world):
        behavior = small_world["behavior"]
        before = behavior.day_state(day_of(small_world, dt.date(2020, 2, 25)))
        after = behavior.day_state(day_of(small_world, dt.date(2020, 3, 31)))
        assert after.work_s.mean() < before.work_s.mean() * 0.55
        assert after.social_s.mean() < before.social_s.mean() * 0.25

    def test_lockdown_boosts_nearby_exercise(self, small_world):
        behavior = small_world["behavior"]
        before = behavior.day_state(day_of(small_world, dt.date(2020, 2, 25)))
        after = behavior.day_state(day_of(small_world, dt.date(2020, 3, 31)))
        assert after.nearby_s.mean() > before.nearby_s.mean()

    def test_essential_workers_keep_commuting(self, small_world):
        from repro.mobility.agents import WorkerType

        agents = small_world["agents"]
        state = small_world["behavior"].day_state(
            day_of(small_world, dt.date(2020, 3, 31))
        )
        essential = agents.worker_type == WorkerType.ESSENTIAL
        commuter = agents.worker_type == WorkerType.COMMUTER
        assert (
            state.work_s[essential].mean() > state.work_s[commuter].mean() * 2
        )

    def test_weekend_trips_common_before_rare_after(self, small_world):
        behavior = small_world["behavior"]
        before = behavior.day_state(day_of(small_world, dt.date(2020, 2, 15)))
        after = behavior.day_state(day_of(small_world, dt.date(2020, 4, 4)))
        assert before.on_trip.mean() > 0.04
        assert after.on_trip.mean() < before.on_trip.mean() * 0.5

    def test_pre_lockdown_exodus_from_inner_london(self, small_world):
        behavior = small_world["behavior"]
        agents = small_world["agents"]
        state = behavior.day_state(day_of(small_world, dt.date(2020, 3, 21)))
        inner = agents.inner_london_mask
        assert state.on_trip[inner].mean() > state.on_trip[~inner].mean() + 0.04

    def test_relocation_starts_around_lockdown(self, small_world):
        behavior = small_world["behavior"]
        agents = small_world["agents"]
        before = behavior.day_state(day_of(small_world, dt.date(2020, 3, 10)))
        during = behavior.day_state(day_of(small_world, dt.date(2020, 4, 10)))
        assert before.relocated.sum() == 0
        relocated_rate = during.relocated[agents.inner_london_mask].mean()
        assert 0.05 < relocated_rate < 0.18

    def test_relocation_sustained_to_study_end(self, small_world):
        behavior = small_world["behavior"]
        agents = small_world["agents"]
        late = behavior.day_state(day_of(small_world, dt.date(2020, 5, 8)))
        rate = late.relocated[agents.inner_london_mask].mean()
        assert rate > 0.04  # most relocators have not returned

    def test_deterministic_per_day(self, small_world):
        behavior = small_world["behavior"]
        first = behavior.day_state(30)
        second = behavior.day_state(30)
        assert np.array_equal(first.work_s, second.work_s)
        assert np.array_equal(first.on_trip, second.on_trip)


class TestTrajectories:
    def test_dwell_partitions_the_day(self, small_world):
        dwell = small_world["trajectories"].day_dwell(10)
        totals = dwell.dwell_s.sum(axis=(1, 2))
        assert np.allclose(totals, 86_400.0, atol=1.0)

    def test_bins_partition_four_hours(self, small_world):
        dwell = small_world["trajectories"].day_dwell(10)
        per_bin = dwell.dwell_s.sum(axis=2)
        assert np.allclose(per_bin, BIN_SECONDS, atol=1.0)
        assert dwell.dwell_s.shape[1] == NUM_BINS

    def test_dwell_non_negative(self, small_world):
        dwell = small_world["trajectories"].day_dwell(40)
        assert dwell.dwell_s.min() >= -1e-9

    def test_nights_at_home_normally(self, small_world):
        dwell = small_world["trajectories"].day_dwell(
            day_of(small_world, dt.date(2020, 2, 25))
        )
        night = dwell.nighttime_dwell()
        home_share = night[:, AnchorSlot.HOME] / night.sum(axis=1)
        assert np.median(home_share) > 0.9

    def test_relocated_users_fully_away(self, small_world):
        behavior = small_world["behavior"]
        day = day_of(small_world, dt.date(2020, 4, 10))
        state = behavior.day_state(day)
        dwell = small_world["trajectories"].day_dwell(day)
        moved = state.relocated
        if moved.any():
            away = (
                dwell.dwell_s[moved][:, :, AnchorSlot.RELOC_PRIMARY]
                + dwell.dwell_s[moved][:, :, AnchorSlot.RELOC_SECONDARY]
            ).sum(axis=1)
            assert np.allclose(away, 86_400.0, atol=1.0)

    def test_trip_users_fully_on_trip_anchor(self, small_world):
        behavior = small_world["behavior"]
        day = day_of(small_world, dt.date(2020, 2, 15))
        state = behavior.day_state(day)
        dwell = small_world["trajectories"].day_dwell(day)
        if state.on_trip.any():
            trip_time = dwell.dwell_s[
                state.on_trip, :, AnchorSlot.TRIP
            ].sum(axis=1)
            assert np.allclose(trip_time, 86_400.0, atol=1.0)

    def test_lockdown_increases_home_time(self, small_world):
        trajectories = small_world["trajectories"]
        before = trajectories.day_dwell(
            day_of(small_world, dt.date(2020, 2, 25))
        )
        after = trajectories.day_dwell(
            day_of(small_world, dt.date(2020, 3, 31))
        )
        home_before = before.daily_dwell()[:, AnchorSlot.HOME].mean()
        home_after = after.daily_dwell()[:, AnchorSlot.HOME].mean()
        assert home_after > home_before + 2 * 3600
