"""Edge-case and configuration tests for the behaviour model."""

import datetime as dt

import numpy as np
import pytest

from repro.mobility import BehaviorModel, BehaviorSettings, PandemicTimeline


def make_behavior(small_world, **settings_overrides):
    defaults = BehaviorSettings(**settings_overrides)
    return BehaviorModel(
        small_world["agents"],
        small_world["timeline"],
        small_world["calendar"],
        settings=defaults,
        seed=99,
    )


class TestRelocationSchedule:
    def test_relocators_never_trip(self, small_world):
        behavior = small_world["behavior"]
        calendar = small_world["calendar"]
        # A lockdown-era weekend.
        state = behavior.day_state(calendar.day_of(dt.date(2020, 4, 11)))
        assert not (state.on_trip & state.relocated).any()

    def test_students_leave_during_school_closure_window(self, small_world):
        behavior = small_world["behavior"]
        agents = small_world["agents"]
        calendar = small_world["calendar"]
        starts = behavior.relocation_start_days
        students = agents.is_student & agents.relocation_candidate
        if students.any():
            student_starts = starts[students]
            window = (
                calendar.day_of(dt.date(2020, 3, 19)),
                calendar.day_of(dt.date(2020, 3, 22)),
            )
            assert np.all(student_starts >= window[0])
            assert np.all(student_starts <= window[1])

    def test_some_relocators_return(self, small_world):
        behavior = small_world["behavior"]
        calendar = small_world["calendar"]
        mid = behavior.day_state(calendar.day_of(dt.date(2020, 4, 10)))
        late = behavior.day_state(calendar.day_of(dt.date(2020, 5, 9)))
        assert late.relocated.sum() < mid.relocated.sum()

    def test_non_candidates_never_relocate(self, small_world):
        behavior = small_world["behavior"]
        agents = small_world["agents"]
        state = behavior.day_state(70)
        assert not state.relocated[~agents.relocation_candidate].any()


class TestRestrictionResponse:
    def test_restriction_zero_before_pandemic(self, small_world):
        behavior = small_world["behavior"]
        calendar = small_world["calendar"]
        state = behavior.day_state(calendar.day_of(dt.date(2020, 2, 10)))
        assert state.restriction.max() == 0.0

    def test_compliance_modulates_restriction(self, small_world):
        behavior = small_world["behavior"]
        agents = small_world["agents"]
        calendar = small_world["calendar"]
        state = behavior.day_state(calendar.day_of(dt.date(2020, 3, 31)))
        strict = agents.compliance > 0.95
        loose = agents.compliance < 0.5
        if strict.any() and loose.any():
            assert (
                state.restriction[strict].mean()
                > state.restriction[loose].mean()
            )

    def test_london_restriction_lower_in_week_19(self, small_world):
        behavior = small_world["behavior"]
        agents = small_world["agents"]
        calendar = small_world["calendar"]
        state = behavior.day_state(calendar.day_of(dt.date(2020, 5, 6)))
        london = agents.home_region == "London"
        midlands = agents.home_region == "West Midlands"
        assert (
            state.restriction[london].mean()
            < state.restriction[midlands].mean()
        )


class TestSettingsOverrides:
    def test_zero_wfh_keeps_commutes(self, small_world):
        behavior = make_behavior(small_world, wfh_max=0.0)
        calendar = small_world["calendar"]
        before = behavior.day_state(calendar.day_of(dt.date(2020, 2, 25)))
        during = behavior.day_state(calendar.day_of(dt.date(2020, 3, 31)))
        # Without WFH, on-site work barely changes.
        assert during.work_s.mean() > before.work_s.mean() * 0.8

    def test_total_trip_suppression(self, small_world):
        behavior = make_behavior(
            small_world,
            weekend_trip_probability=0.0,
            london_weekend_trip_bonus=0.0,
            pre_lockdown_exodus_probability=0.0,
            late_april_trip_bonus=0.0,
        )
        calendar = small_world["calendar"]
        for date in (dt.date(2020, 2, 15), dt.date(2020, 3, 21)):
            state = behavior.day_state(calendar.day_of(date))
            assert state.on_trip.sum() == 0

    def test_noise_sigma_zero_is_deterministic_durations(self, small_world):
        behavior = make_behavior(small_world, duration_noise_sigma=1e-9)
        calendar = small_world["calendar"]
        state = behavior.day_state(calendar.day_of(dt.date(2020, 2, 25)))
        from repro.mobility.agents import WorkerType

        agents = small_world["agents"]
        commuters = agents.worker_type == WorkerType.COMMUTER
        work_hours = state.work_s[commuters] / 3600.0
        assert work_hours.std() < 0.01


class TestTimelineOverride:
    def test_flat_timeline_means_no_response(self, small_world):
        flat = PandemicTimeline(
            declared_level=0.0, distancing_level=0.0,
            closures_level=0.0, lockdown_level=0.0,
        )
        behavior = BehaviorModel(
            small_world["agents"], flat, small_world["calendar"], seed=5
        )
        calendar = small_world["calendar"]
        before = behavior.day_state(calendar.day_of(dt.date(2020, 2, 25)))
        during = behavior.day_state(calendar.day_of(dt.date(2020, 3, 31)))
        assert during.work_s.mean() == pytest.approx(
            before.work_s.mean(), rel=0.1
        )
