"""Shared small-scale simulation fixtures for mobility tests."""

import pytest

from repro.geo import build_uk_geography
from repro.mobility import (
    BehaviorModel,
    PandemicTimeline,
    TrajectoryModel,
    build_agents,
)
from repro.network import DeviceCatalog, build_subscriber_base, build_topology
from repro.simulation import default_calendar


@pytest.fixture(scope="session")
def small_world():
    """A small but full-featured world shared by mobility tests."""
    geography = build_uk_geography(seed=42)
    topology = build_topology(geography, target_site_count=400, seed=42)
    catalog = DeviceCatalog.generate(seed=42)
    base = build_subscriber_base(
        geography, topology, catalog, num_users=4000, seed=42
    )
    agents = build_agents(geography, topology, base, seed=42)
    calendar = default_calendar()
    timeline = PandemicTimeline()
    behavior = BehaviorModel(agents, timeline, calendar, seed=42)
    trajectories = TrajectoryModel(agents, behavior)
    return {
        "geography": geography,
        "topology": topology,
        "catalog": catalog,
        "base": base,
        "agents": agents,
        "calendar": calendar,
        "timeline": timeline,
        "behavior": behavior,
        "trajectories": trajectories,
    }
