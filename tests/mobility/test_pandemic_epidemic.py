"""Unit tests for the pandemic timeline and epidemic curve."""

import datetime as dt

import pytest

from repro.mobility import EpidemicCurve, PandemicTimeline, Phase


@pytest.fixture(scope="module")
def timeline():
    return PandemicTimeline()


class TestPhases:
    @pytest.mark.parametrize(
        ("date", "phase"),
        [
            (dt.date(2020, 2, 10), Phase.PRE_PANDEMIC),
            (dt.date(2020, 3, 5), Phase.OUTBREAK),
            (dt.date(2020, 3, 12), Phase.DECLARED),
            (dt.date(2020, 3, 17), Phase.DISTANCING),
            (dt.date(2020, 3, 21), Phase.CLOSURES),
            (dt.date(2020, 3, 30), Phase.LOCKDOWN),
            (dt.date(2020, 4, 20), Phase.RELAXATION),
        ],
    )
    def test_phase_boundaries(self, timeline, date, phase):
        assert timeline.phase(date) is phase

    def test_restriction_zero_before_declaration(self, timeline):
        assert timeline.restriction_level(dt.date(2020, 2, 20)) == 0.0
        assert timeline.restriction_level(dt.date(2020, 3, 8)) == 0.0

    def test_restriction_monotone_through_lockdown(self, timeline):
        dates = [
            dt.date(2020, 3, 8),
            dt.date(2020, 3, 12),
            dt.date(2020, 3, 17),
            dt.date(2020, 3, 21),
            dt.date(2020, 3, 25),
        ]
        levels = [timeline.restriction_level(date) for date in dates]
        assert levels == sorted(levels)
        assert levels[-1] == 1.0

    def test_adherence_decays_after_week_15(self, timeline):
        early = timeline.restriction_level(dt.date(2020, 4, 1))
        late = timeline.restriction_level(dt.date(2020, 5, 8))
        assert early == 1.0
        assert 0.8 < late < 1.0


class TestRegionalRelaxation:
    def test_no_regional_difference_before_week_18(self, timeline):
        date = dt.date(2020, 4, 15)
        assert timeline.regional_multiplier("London", date) == 1.0
        assert timeline.regional_multiplier("North West", date) == 1.0

    def test_london_and_yorkshire_relax_faster(self, timeline):
        date = dt.date(2020, 5, 6)  # week 19
        london = timeline.regional_multiplier("London", date)
        yorkshire = timeline.regional_multiplier(
            "Yorkshire and the Humber", date
        )
        manchester = timeline.regional_multiplier("North West", date)
        midlands = timeline.regional_multiplier("West Midlands", date)
        assert london < manchester
        assert yorkshire < midlands
        assert manchester == 1.0
        assert midlands == 1.0

    def test_regional_restriction_composes(self, timeline):
        date = dt.date(2020, 5, 6)
        assert timeline.regional_restriction(
            "London", date
        ) < timeline.restriction_level(date)


class TestEpidemicCurve:
    def setup_method(self):
        self.curve = EpidemicCurve()

    def test_negligible_in_february(self):
        assert self.curve.cumulative_cases(dt.date(2020, 2, 23)) < 300

    def test_about_1000_cases_at_declaration(self):
        cases = self.curve.cumulative_cases(dt.date(2020, 3, 11))
        assert 400 < cases < 3000

    def test_monotone_increasing(self):
        dates = [
            dt.date(2020, 2, 23) + dt.timedelta(days=offset)
            for offset in range(0, 70, 7)
        ]
        series = [self.curve.cumulative_cases(date) for date in dates]
        assert series == sorted(series)

    def test_series_matches_scalar(self):
        dates = (dt.date(2020, 3, 1), dt.date(2020, 4, 1))
        series = self.curve.cumulative_series(dates)
        assert series[0] == pytest.approx(self.curve.cumulative_cases(dates[0]))
        assert series[1] == pytest.approx(self.curve.cumulative_cases(dates[1]))

    def test_daily_new_positive(self):
        assert self.curve.daily_new_cases(dt.date(2020, 4, 1)) > 0

    def test_saturates_at_final_size(self):
        assert self.curve.cumulative_cases(dt.date(2021, 1, 1)) <= 190_000
