"""Smoke tests: the example scripts run end to end.

Only the two cheapest examples run here (the others exercise the same
code paths at larger scale); each is executed as a real subprocess, the
way a user would run it.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
def test_quickstart_runs():
    out = run_example("quickstart.py", "7")
    assert "targets inside the band" in out
    assert "Headline numbers" in out


@pytest.mark.slow
def test_measurement_pipeline_runs():
    out = run_example("measurement_pipeline.py")
    assert "sessionizing" in out
    assert "pipelines agree" in out


@pytest.mark.slow
def test_scenario_grid_runs(tmp_path):
    out = run_example("scenario_grid.py", str(tmp_path / "grid"))
    assert "Headline deltas vs baseline" in out
    assert out.count("simulated") == 6
    # A second invocation reuses every persisted cell.
    again = run_example("scenario_grid.py", str(tmp_path / "grid"))
    assert again.count("reused") == 6
