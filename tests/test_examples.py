"""Smoke tests: the example scripts run end to end.

Only the two cheapest examples run here (the others exercise the same
code paths at larger scale); each is executed as a real subprocess, the
way a user would run it.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
def test_quickstart_runs():
    out = run_example("quickstart.py", "7")
    assert "targets inside the band" in out
    assert "Headline numbers" in out


@pytest.mark.slow
def test_measurement_pipeline_runs():
    out = run_example("measurement_pipeline.py")
    assert "sessionizing" in out
    assert "pipelines agree" in out
