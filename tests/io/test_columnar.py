"""The columnar feed store: round-trips, streaming, and edge cases.

The out-of-core layout (:mod:`repro.io.columnar`) promises that nothing
observable changes when the mobility feed lives on disk instead of in
RAM: a save → load round-trip is *bitwise* identical for every shard
count, the streamed ``compute_daily_metrics`` path reproduces the
in-memory batch path byte for byte, and the ``REPRO_STORE_NAIVE=1``
oracle forces the historical eager path everywhere so the two can be
diffed.  This module pins each of those promises, plus the degenerate
populations (zero and one filtered user) and the ``store.*`` telemetry
counters.
"""

import datetime as dt
import tempfile
import warnings
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import api, telemetry
from repro.core.statistics import compute_daily_metrics
from repro.io import load_feeds, save_feeds
from repro.io.columnar import (
    SHARD_COLUMNS,
    ColumnarWriter,
    ShardedMobilityFeed,
    materialize,
    open_columnar,
    shard_relative_paths,
)
from repro.io.store import RunStoreError
from repro.simulation.checkpoint import CheckpointStore
from repro.simulation.clock import StudyCalendar
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator
from repro.simulation.faults import RecoverySettings, ShardExecutionError
from repro.simulation.feeds import MobilityFeed
from repro.simulation.sharding import shard_user_indices

from tests.simulation.harness import assert_feeds_equivalent

SHARD_COUNTS = (1, 2, 4)

_CALENDAR = StudyCalendar(first_day=dt.date(2020, 2, 24), num_days=14)


def _config(shards: int) -> SimulationConfig:
    return (
        SimulationConfig.tiny(seed=23)
        .with_overrides(
            num_users=160,
            target_site_count=40,
            calendar=_CALENDAR,
        )
        .with_parallelism(shards)
    )


_FEEDS: dict[int, object] = {}


def _feeds(shards: int):
    """In-memory baseline feeds for ``shards``, computed once."""
    if shards not in _FEEDS:
        _FEEDS[shards] = Simulator(_config(shards)).run()
    return _FEEDS[shards]


# ---------------------------------------------------------------------------
# Round-trips across shard counts
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("shards", SHARD_COUNTS)
class TestRoundTrip:
    def test_eager_load_is_bitwise(self, shards, tmp_path):
        target = tmp_path / "run"
        save_feeds(_feeds(shards), target)
        loaded = load_feeds(target)
        assert isinstance(loaded.mobility, MobilityFeed)
        assert_feeds_equivalent(_feeds(shards), loaded, bitwise=True)

    def test_lazy_load_is_bitwise(self, shards, tmp_path):
        target = tmp_path / "run"
        save_feeds(_feeds(shards), target)
        loaded = load_feeds(target, lazy=True)
        assert isinstance(loaded.mobility, ShardedMobilityFeed)
        assert loaded.mobility.num_shards == shards
        assert_feeds_equivalent(_feeds(shards), loaded, bitwise=True)

    def test_streamed_run_writes_identical_bytes(self, shards, tmp_path):
        # A run streamed straight into its partition commits the exact
        # bytes an in-memory run's save writes — the engine's streaming
        # mode changes where days land, never what they hold.
        streamed_dir = tmp_path / "streamed"
        feeds = Simulator(_config(shards)).run(stream_dir=streamed_dir)
        save_feeds(feeds, streamed_dir)
        memory_dir = tmp_path / "memory"
        save_feeds(_feeds(shards), memory_dir)
        for relative in shard_relative_paths(shards):
            streamed = (streamed_dir / relative).read_bytes()
            memory = (memory_dir / relative).read_bytes()
            assert streamed == memory, f"{relative}: bytes differ"

    def test_lazy_dwell_stacks_are_memory_maps(self, shards, tmp_path):
        target = tmp_path / "run"
        save_feeds(_feeds(shards), target)
        mobility = load_feeds(target, lazy=True).mobility
        for shard in mobility.shards:
            assert isinstance(shard.daily_dwell, np.memmap)
            assert isinstance(shard.night_dwell, np.memmap)


# ---------------------------------------------------------------------------
# Streamed analysis vs the in-memory path and the naive oracle
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def lazy_run(tmp_path_factory):
    target = tmp_path_factory.mktemp("columnar") / "run"
    save_feeds(_feeds(4), target)
    return target


class TestStreamedMetrics:
    def test_streamed_matches_in_memory(self, lazy_run):
        lazy = load_feeds(lazy_run, lazy=True)
        assert isinstance(lazy.mobility, ShardedMobilityFeed)
        streamed = compute_daily_metrics(lazy)
        in_memory = compute_daily_metrics(_feeds(4))
        assert streamed.entropy.dtype == in_memory.entropy.dtype
        assert np.array_equal(streamed.entropy, in_memory.entropy)
        assert np.array_equal(streamed.gyration_km, in_memory.gyration_km)
        assert np.array_equal(streamed.user_ids, in_memory.user_ids)

    def test_streamed_matches_naive_oracle(self, lazy_run, monkeypatch):
        streamed = compute_daily_metrics(load_feeds(lazy_run, lazy=True))
        monkeypatch.setenv("REPRO_STORE_NAIVE", "1")
        oracle = compute_daily_metrics(load_feeds(lazy_run, lazy=True))
        assert np.array_equal(streamed.entropy, oracle.entropy)
        assert np.array_equal(streamed.gyration_km, oracle.gyration_km)

    def test_naive_env_forces_eager_load(self, lazy_run, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_NAIVE", "1")
        loaded = load_feeds(lazy_run, lazy=True)
        assert isinstance(loaded.mobility, MobilityFeed)

    def test_gyration_modes_stream_identically(self, lazy_run):
        lazy = load_feeds(lazy_run, lazy=True)
        for mode in ("weighted", "paper"):
            streamed = compute_daily_metrics(lazy, gyration_mode=mode)
            in_memory = compute_daily_metrics(_feeds(4), gyration_mode=mode)
            assert np.array_equal(
                streamed.gyration_km, in_memory.gyration_km
            )


# ---------------------------------------------------------------------------
# Resume from checkpoints onto a lazily-mapped run
# ---------------------------------------------------------------------------


class TestResumeOnLazyRun:
    _KILL_DAY = 9

    def _interrupt(self, directory, shards):
        faulty = _config(shards).with_overrides(
            recovery=RecoverySettings(max_retries=0),
            fault_spec=f"kill:day={self._KILL_DAY}",
        )
        with pytest.raises(ShardExecutionError):
            Simulator(faulty).run(checkpoint_dir=directory)

    @pytest.mark.parametrize("shards", (1, 2))
    def test_resume_persists_a_lazy_loadable_run(self, shards, tmp_path):
        rundir = tmp_path / "run"
        self._interrupt(rundir, shards)
        assert CheckpointStore.present(rundir)

        run = api.resume(rundir)
        assert run.directory == rundir
        assert not CheckpointStore.present(rundir)

        loaded = load_feeds(rundir, lazy=True)
        assert isinstance(loaded.mobility, ShardedMobilityFeed)
        assert_feeds_equivalent(_feeds(shards), loaded, bitwise=True)

    def test_resumed_run_streams_metrics_bitwise(self, tmp_path):
        rundir = tmp_path / "run"
        self._interrupt(rundir, 2)
        api.resume(rundir)
        streamed = compute_daily_metrics(load_feeds(rundir, lazy=True))
        in_memory = compute_daily_metrics(_feeds(2))
        assert np.array_equal(streamed.entropy, in_memory.entropy)
        assert np.array_equal(streamed.gyration_km, in_memory.gyration_km)


# ---------------------------------------------------------------------------
# Degenerate populations: zero and one filtered user
# ---------------------------------------------------------------------------


def _degenerate_feeds(seed: int):
    # num_users=1 keeps the run tiny; the lone SIM survives filtering
    # for seed=1 and is dropped (M2M/roamer) for seed=2, probed offline.
    config = SimulationConfig(num_users=1, target_site_count=10, seed=seed)
    return Simulator(config).run()


class TestDegeneratePopulations:
    def _roundtrip_and_analyze(self, feeds, tmp_path):
        target = tmp_path / "run"
        save_feeds(feeds, target)
        loaded = load_feeds(target, lazy=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error", category=RuntimeWarning)
            metrics = compute_daily_metrics(loaded)
        return loaded, metrics

    def test_single_user_roundtrip(self, tmp_path):
        feeds = _degenerate_feeds(seed=1)
        assert feeds.mobility.num_users == 1
        loaded, metrics = self._roundtrip_and_analyze(feeds, tmp_path)
        assert loaded.mobility.num_users == 1
        days = feeds.calendar.num_days
        assert metrics.entropy.shape == (days, 1)
        assert metrics.gyration_km.shape == (days, 1)
        assert_feeds_equivalent(feeds, loaded, bitwise=True)

    def test_zero_user_roundtrip(self, tmp_path):
        feeds = _degenerate_feeds(seed=2)
        assert feeds.mobility.num_users == 0
        loaded, metrics = self._roundtrip_and_analyze(feeds, tmp_path)
        assert loaded.mobility.num_users == 0
        days = feeds.calendar.num_days
        assert metrics.entropy.shape == (days, 0)
        assert metrics.gyration_km.shape == (days, 0)
        assert_feeds_equivalent(feeds, loaded, bitwise=True)

    def test_zero_user_eager_load(self, tmp_path):
        feeds = _degenerate_feeds(seed=2)
        target = tmp_path / "run"
        save_feeds(feeds, target)
        loaded = load_feeds(target)
        assert loaded.mobility.num_users == 0
        assert loaded.mobility.num_days == feeds.calendar.num_days


# ---------------------------------------------------------------------------
# Telemetry counters
# ---------------------------------------------------------------------------


@pytest.fixture
def recorder():
    recorder = telemetry.enable()
    yield recorder
    telemetry.disable()


class TestStoreCounters:
    def test_lazy_open_counts_mapped_bytes(self, lazy_run, recorder):
        mobility = load_feeds(lazy_run, lazy=True).mobility
        counters = telemetry.snapshot()["counters"]
        expected = sum(
            shard.daily_dwell.nbytes + shard.night_dwell.nbytes
            for shard in mobility.shards
        )
        assert counters["store.bytes_mapped"] == expected > 0

    def test_streaming_counts_nonempty_shards(self, lazy_run, recorder):
        lazy = load_feeds(lazy_run, lazy=True)
        compute_daily_metrics(lazy)
        nonempty = sum(
            1 for shard in lazy.mobility.shards if shard.num_rows
        )
        counters = telemetry.snapshot()["counters"]
        assert counters["store.shards_streamed"] == nonempty > 0

    def test_load_counts_digest_verifications(self, lazy_run, recorder):
        load_feeds(lazy_run, lazy=True)
        counters = telemetry.snapshot()["counters"]
        # Three small files plus five columns for each of four shards.
        assert counters["store.digest_verifications"] == 3 + 5 * 4


# ---------------------------------------------------------------------------
# Property-based round-trip over synthetic feeds
# ---------------------------------------------------------------------------


@st.composite
def synthetic_feeds(draw):
    num_users = draw(st.integers(min_value=0, max_value=10))
    num_days = draw(st.integers(min_value=0, max_value=4))
    num_anchors = draw(st.integers(min_value=1, max_value=4))
    user_ids = np.asarray(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=2**31),
                min_size=num_users,
                max_size=num_users,
                unique=True,
            )
        ),
        dtype=np.int64,
    )
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    anchor_sites = rng.integers(
        0, 50, size=(num_users, num_anchors), dtype=np.int64
    )
    shape = (num_users, num_anchors)
    daily = [
        (rng.random(shape) * 86_400).astype(np.float32)
        for _ in range(num_days)
    ]
    night = [
        (rng.random(shape) * 28_800).astype(np.float32)
        for _ in range(num_days)
    ]
    return MobilityFeed(
        user_ids=user_ids,
        anchor_sites=anchor_sites,
        daily_dwell=daily,
        night_dwell=night,
    )


class TestPropertyRoundTrip:
    @given(mobility=synthetic_feeds(), shards=st.sampled_from(SHARD_COUNTS))
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_roundtrip_is_bitwise_for_every_layout(self, mobility, shards):
        with tempfile.TemporaryDirectory() as scratch:
            target = Path(scratch) / "run"
            writer = ColumnarWriter(
                target,
                shard_user_indices(mobility.user_ids, shards),
                mobility.user_ids,
                mobility.anchor_sites,
                mobility.num_days,
            )
            writer.write_all(mobility)
            writer.commit()
            for lazy in (False, True):
                reopened = open_columnar(target, shards, lazy=lazy)
                rebuilt = materialize(reopened)
                assert np.array_equal(rebuilt.user_ids, mobility.user_ids)
                assert np.array_equal(
                    rebuilt.anchor_sites, mobility.anchor_sites
                )
                for day in range(mobility.num_days):
                    for column in ("daily_dwell", "night_dwell"):
                        expected = getattr(mobility, column)[day]
                        actual = getattr(rebuilt, column)[day]
                        assert actual.dtype == expected.dtype
                        assert np.array_equal(actual, expected)

    @given(shards=st.sampled_from(SHARD_COUNTS))
    @settings(max_examples=3, deadline=None)
    def test_missing_column_is_named(self, shards):
        mobility = MobilityFeed(
            user_ids=np.arange(6, dtype=np.int64),
            anchor_sites=np.zeros((6, 2), dtype=np.int64),
            daily_dwell=[np.ones((6, 2), dtype=np.float32)],
            night_dwell=[np.ones((6, 2), dtype=np.float32)],
        )
        with tempfile.TemporaryDirectory() as scratch:
            target = Path(scratch) / "run"
            writer = ColumnarWriter(
                target,
                shard_user_indices(mobility.user_ids, shards),
                mobility.user_ids,
                mobility.anchor_sites,
                mobility.num_days,
            )
            writer.write_all(mobility)
            writer.commit()
            victim = (
                target / shard_relative_paths(shards)[len(SHARD_COLUMNS) - 1]
            )
            victim.unlink()
            with pytest.raises(RunStoreError, match="missing feed shard"):
                open_columnar(target, shards, lazy=True)
