"""Tests for feed persistence (save/load round trip, precise errors)."""

import numpy as np
import pytest

from repro.io import RunStoreError, load_feeds, save_feeds
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator


@pytest.fixture(scope="module")
def run_feeds():
    return Simulator(SimulationConfig.tiny(seed=21)).run()


@pytest.fixture(scope="module")
def reloaded(run_feeds, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "run"
    save_feeds(run_feeds, path)
    return load_feeds(path)


class TestRoundTrip:
    def test_kpis_identical(self, run_feeds, reloaded):
        original = run_feeds.radio_kpis
        back = reloaded.radio_kpis
        assert len(back) == len(original)
        assert np.allclose(
            back["dl_volume_mb"], original["dl_volume_mb"]
        )
        assert back["postcode"].tolist() == original["postcode"].tolist()

    def test_mobility_identical(self, run_feeds, reloaded):
        assert np.array_equal(
            reloaded.mobility.user_ids, run_feeds.mobility.user_ids
        )
        assert np.array_equal(
            reloaded.mobility.anchor_sites,
            run_feeds.mobility.anchor_sites,
        )
        for day in (0, 10, run_feeds.mobility.num_days - 1):
            assert np.allclose(
                reloaded.mobility.dwell(day), run_feeds.mobility.dwell(day)
            )
            assert np.allclose(
                reloaded.mobility.night(day), run_feeds.mobility.night(day)
            )

    def test_world_rebuilt_identically(self, run_feeds, reloaded):
        assert np.array_equal(
            reloaded.agents.home_site, run_feeds.agents.home_site
        )
        assert reloaded.topology.num_sites == run_feeds.topology.num_sites
        assert (
            reloaded.geography.total_residents
            == run_feeds.geography.total_residents
        )

    def test_upgrade_day_preserved(self, run_feeds, reloaded):
        assert (
            reloaded.interconnect_upgrade_day
            == run_feeds.interconnect_upgrade_day
        )

    def test_analysis_matches_after_reload(self, run_feeds, reloaded):
        from repro.core import CovidImpactStudy

        original = CovidImpactStudy(run_feeds).fig3()["gyration"]
        back = CovidImpactStudy(reloaded).fig3()["gyration"]
        assert np.allclose(
            original.values["UK"], back.values["UK"], atol=1e-3
        )

    def test_manifest_written(self, run_feeds, tmp_path):
        path = save_feeds(run_feeds, tmp_path / "m")
        assert (path / "manifest.json").exists()
        assert (path / "config.pkl").exists()
        assert (path / "radio_kpis.csv").exists()
        assert (path / "mobility.npz").exists()

    def test_configless_feeds_rejected(self, run_feeds, tmp_path):
        import dataclasses

        stripped = dataclasses.replace(run_feeds, config=None)
        with pytest.raises(ValueError, match="config"):
            save_feeds(stripped, tmp_path / "x")

    def test_bad_version_rejected(self, run_feeds, tmp_path):
        import json

        path = save_feeds(run_feeds, tmp_path / "v")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = 99
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="version"):
            load_feeds(path)


class TestPreciseErrors:
    """Broken run directories diagnose themselves.

    Every failure mode — missing directory, missing file, truncated
    pickle, corrupt archive, manifest lies — must raise
    :class:`RunStoreError` *naming the offending file*, never a leaked
    ``KeyError`` / ``FileNotFoundError`` / pickle traceback.
    """

    @pytest.fixture
    def saved(self, run_feeds, tmp_path):
        return save_feeds(run_feeds, tmp_path / "run")

    def test_is_a_value_error(self):
        # Backwards compatibility: historical callers catch ValueError.
        assert issubclass(RunStoreError, ValueError)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(RunStoreError, match="does not exist"):
            load_feeds(tmp_path / "never-saved")

    def test_missing_manifest(self, saved):
        (saved / "manifest.json").unlink()
        with pytest.raises(RunStoreError, match="manifest.json"):
            load_feeds(saved)

    def test_interrupted_run_points_at_resume(self, saved):
        # checkpoints/ present but no manifest = an interrupted
        # simulate; the error must say how to finish it.
        (saved / "manifest.json").unlink()
        (saved / "checkpoints").mkdir()
        (saved / "checkpoints" / "state.json").write_text("{}")
        with pytest.raises(RunStoreError, match="--resume"):
            load_feeds(saved)

    def test_garbled_manifest(self, saved):
        (saved / "manifest.json").write_text("{not json")
        with pytest.raises(RunStoreError, match="manifest.json"):
            load_feeds(saved)

    def test_manifest_missing_counts(self, saved):
        import json

        manifest = json.loads((saved / "manifest.json").read_text())
        del manifest["num_users"]
        (saved / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(RunStoreError, match="num_users"):
            load_feeds(saved)

    def test_missing_config(self, saved):
        (saved / "config.pkl").unlink()
        with pytest.raises(RunStoreError, match="config.pkl"):
            load_feeds(saved)

    def test_truncated_config(self, saved):
        blob = (saved / "config.pkl").read_bytes()
        (saved / "config.pkl").write_bytes(blob[: len(blob) // 2])
        with pytest.raises(RunStoreError, match="config.pkl"):
            load_feeds(saved)

    def test_missing_mobility(self, saved):
        (saved / "mobility.npz").unlink()
        with pytest.raises(RunStoreError, match="mobility.npz"):
            load_feeds(saved)

    def test_corrupt_mobility(self, saved):
        (saved / "mobility.npz").write_bytes(b"\x00" * 64)
        with pytest.raises(RunStoreError, match="mobility.npz"):
            load_feeds(saved)

    def test_mobility_missing_arrays(self, saved):
        # Strip the recorded digests (an old-format manifest) so the
        # rewritten archive reaches the reader's own diagnosis instead
        # of the integrity check.
        import json

        manifest = json.loads((saved / "manifest.json").read_text())
        del manifest["feeds_sha256"]
        (saved / "manifest.json").write_text(json.dumps(manifest))
        np.savez(saved / "mobility.npz", user_ids=np.arange(3))
        with pytest.raises(RunStoreError, match="anchor_sites"):
            load_feeds(saved)

    def test_manifest_mobility_disagreement(self, saved):
        import json

        manifest = json.loads((saved / "manifest.json").read_text())
        manifest["num_users"] = manifest["num_users"] + 1
        (saved / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(RunStoreError, match="manifest promises"):
            load_feeds(saved)

    def test_missing_kpis(self, saved):
        (saved / "radio_kpis.csv").unlink()
        with pytest.raises(RunStoreError, match="radio_kpis.csv"):
            load_feeds(saved)

    def test_error_carries_the_path(self, saved):
        (saved / "rat_time.csv").unlink()
        with pytest.raises(RunStoreError) as excinfo:
            load_feeds(saved)
        assert excinfo.value.path == saved / "rat_time.csv"


class TestFeedDigests:
    """save_feeds records per-feed SHA-256; load_feeds verifies them."""

    FILES = ("radio_kpis.csv", "rat_time.csv", "mobility.npz", "config.pkl")

    @pytest.fixture
    def saved(self, run_feeds, tmp_path):
        return save_feeds(run_feeds, tmp_path / "run")

    def test_manifest_records_every_feed(self, saved):
        import hashlib
        import json

        digests = json.loads(
            (saved / "manifest.json").read_text()
        )["feeds_sha256"]
        assert sorted(digests) == sorted(self.FILES)
        for name, recorded in digests.items():
            actual = hashlib.sha256(
                (saved / name).read_bytes()
            ).hexdigest()
            assert recorded == actual

    def test_feeds_carry_their_digests(self, run_feeds, saved):
        import json

        assert run_feeds.source_digests == json.loads(
            (saved / "manifest.json").read_text()
        )["feeds_sha256"]
        assert load_feeds(saved).source_digests == run_feeds.source_digests

    @pytest.mark.parametrize(
        "name", ["radio_kpis.csv", "rat_time.csv", "config.pkl"]
    )
    def test_tampered_feed_is_refused(self, saved, name):
        with open(saved / name, "ab") as handle:
            handle.write(b" ")
        with pytest.raises(RunStoreError, match="digest") as excinfo:
            load_feeds(saved)
        assert excinfo.value.path == saved / name

    def test_digestless_manifest_still_loads(self, saved):
        import json

        manifest = json.loads((saved / "manifest.json").read_text())
        del manifest["feeds_sha256"]
        (saved / "manifest.json").write_text(json.dumps(manifest))
        feeds = load_feeds(saved)
        assert feeds.source_digests is None
