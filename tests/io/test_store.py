"""Tests for feed persistence (save/load round trip, precise errors)."""

import numpy as np
import pytest

from repro.io import RunStoreError, load_feeds, save_feeds
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator


@pytest.fixture(scope="module")
def run_feeds():
    return Simulator(SimulationConfig.tiny(seed=21)).run()


@pytest.fixture(scope="module")
def reloaded(run_feeds, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "run"
    save_feeds(run_feeds, path)
    return load_feeds(path)


class TestRoundTrip:
    def test_kpis_identical(self, run_feeds, reloaded):
        original = run_feeds.radio_kpis
        back = reloaded.radio_kpis
        assert len(back) == len(original)
        assert np.allclose(
            back["dl_volume_mb"], original["dl_volume_mb"]
        )
        assert back["postcode"].tolist() == original["postcode"].tolist()

    def test_mobility_identical(self, run_feeds, reloaded):
        assert np.array_equal(
            reloaded.mobility.user_ids, run_feeds.mobility.user_ids
        )
        assert np.array_equal(
            reloaded.mobility.anchor_sites,
            run_feeds.mobility.anchor_sites,
        )
        for day in (0, 10, run_feeds.mobility.num_days - 1):
            assert np.allclose(
                reloaded.mobility.dwell(day), run_feeds.mobility.dwell(day)
            )
            assert np.allclose(
                reloaded.mobility.night(day), run_feeds.mobility.night(day)
            )

    def test_world_rebuilt_identically(self, run_feeds, reloaded):
        assert np.array_equal(
            reloaded.agents.home_site, run_feeds.agents.home_site
        )
        assert reloaded.topology.num_sites == run_feeds.topology.num_sites
        assert (
            reloaded.geography.total_residents
            == run_feeds.geography.total_residents
        )

    def test_upgrade_day_preserved(self, run_feeds, reloaded):
        assert (
            reloaded.interconnect_upgrade_day
            == run_feeds.interconnect_upgrade_day
        )

    def test_analysis_matches_after_reload(self, run_feeds, reloaded):
        from repro.core import CovidImpactStudy

        original = CovidImpactStudy(run_feeds).fig3()["gyration"]
        back = CovidImpactStudy(reloaded).fig3()["gyration"]
        assert np.allclose(
            original.values["UK"], back.values["UK"], atol=1e-3
        )

    def test_manifest_written(self, run_feeds, tmp_path):
        import json

        path = save_feeds(run_feeds, tmp_path / "m")
        assert (path / "manifest.json").exists()
        assert (path / "config.pkl").exists()
        assert (path / "radio_kpis.csv").exists()
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["format_version"] == 2
        assert manifest["feeds"]["layout"] == "columnar"
        shards = manifest["feeds"]["num_shards"]
        assert shards >= 1
        for index in range(shards):
            shard = path / "feeds" / f"shard-{index:04d}"
            for column in (
                "rows", "user_ids", "anchor_sites",
                "daily_dwell", "night_dwell",
            ):
                assert (shard / f"{column}.npy").exists()
        # No stray temporaries survive a completed save.
        assert not list(path.rglob("*.tmp"))

    def test_lazy_load_matches_eager(
        self, run_feeds, reloaded, tmp_path, monkeypatch
    ):
        from repro.io.columnar import ShardedMobilityFeed

        # The naive-oracle switch materializes lazy loads by design;
        # this test pins the lazy path itself.
        monkeypatch.delenv("REPRO_STORE_NAIVE", raising=False)
        path = save_feeds(run_feeds, tmp_path / "lazy")
        lazy = load_feeds(path, lazy=True)
        assert isinstance(lazy.mobility, ShardedMobilityFeed)
        for day in (0, run_feeds.mobility.num_days - 1):
            assert np.array_equal(
                lazy.mobility.dwell(day), run_feeds.mobility.dwell(day)
            )
            assert np.array_equal(
                lazy.mobility.night(day), run_feeds.mobility.night(day)
            )

    def test_configless_feeds_rejected(self, run_feeds, tmp_path):
        import dataclasses

        stripped = dataclasses.replace(run_feeds, config=None)
        with pytest.raises(ValueError, match="config"):
            save_feeds(stripped, tmp_path / "x")

    def test_bad_version_rejected(self, run_feeds, tmp_path):
        import json

        path = save_feeds(run_feeds, tmp_path / "v")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = 99
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="version"):
            load_feeds(path)


class TestPreciseErrors:
    """Broken run directories diagnose themselves.

    Every failure mode — missing directory, missing file, truncated
    pickle, corrupt archive, manifest lies — must raise
    :class:`RunStoreError` *naming the offending file*, never a leaked
    ``KeyError`` / ``FileNotFoundError`` / pickle traceback.
    """

    @pytest.fixture
    def saved(self, run_feeds, tmp_path):
        return save_feeds(run_feeds, tmp_path / "run")

    def test_is_a_value_error(self):
        # Backwards compatibility: historical callers catch ValueError.
        assert issubclass(RunStoreError, ValueError)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(RunStoreError, match="does not exist"):
            load_feeds(tmp_path / "never-saved")

    def test_missing_manifest(self, saved):
        (saved / "manifest.json").unlink()
        with pytest.raises(RunStoreError, match="manifest.json"):
            load_feeds(saved)

    def test_interrupted_run_points_at_resume(self, saved):
        # checkpoints/ present but no manifest = an interrupted
        # simulate; the error must say how to finish it.
        (saved / "manifest.json").unlink()
        (saved / "checkpoints").mkdir()
        (saved / "checkpoints" / "state.json").write_text("{}")
        with pytest.raises(RunStoreError, match="--resume"):
            load_feeds(saved)

    def test_garbled_manifest(self, saved):
        (saved / "manifest.json").write_text("{not json")
        with pytest.raises(RunStoreError, match="manifest.json"):
            load_feeds(saved)

    def test_manifest_missing_counts(self, saved):
        import json

        manifest = json.loads((saved / "manifest.json").read_text())
        del manifest["num_users"]
        (saved / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(RunStoreError, match="num_users"):
            load_feeds(saved)

    def test_missing_config(self, saved):
        (saved / "config.pkl").unlink()
        with pytest.raises(RunStoreError, match="config.pkl"):
            load_feeds(saved)

    def test_truncated_config(self, saved):
        blob = (saved / "config.pkl").read_bytes()
        (saved / "config.pkl").write_bytes(blob[: len(blob) // 2])
        with pytest.raises(RunStoreError, match="config.pkl"):
            load_feeds(saved)

    def test_missing_mobility_shard_file(self, saved):
        # A deleted shard file must be diagnosed by the digest check
        # itself, naming the path — not deferred to a vaguer reader.
        target = saved / "feeds" / "shard-0000" / "daily_dwell.npy"
        target.unlink()
        with pytest.raises(RunStoreError, match="daily_dwell.npy") as exc:
            load_feeds(saved)
        assert exc.value.path == target

    def test_corrupt_mobility_shard_file(self, saved):
        (saved / "feeds" / "shard-0000" / "night_dwell.npy").write_bytes(
            b"\x00" * 64
        )
        with pytest.raises(RunStoreError, match="night_dwell.npy"):
            load_feeds(saved)

    def test_missing_shard_file_without_digests(self, saved):
        # Strip the recorded digests (an old-format manifest) so the
        # missing file reaches the columnar reader's own diagnosis.
        import json

        manifest = json.loads((saved / "manifest.json").read_text())
        del manifest["feeds_sha256"]
        (saved / "manifest.json").write_text(json.dumps(manifest))
        target = saved / "feeds" / "shard-0000" / "anchor_sites.npy"
        target.unlink()
        with pytest.raises(RunStoreError, match="anchor_sites.npy") as exc:
            load_feeds(saved)
        assert exc.value.path == target

    def test_shard_shape_inconsistency_without_digests(self, saved):
        import json

        manifest = json.loads((saved / "manifest.json").read_text())
        del manifest["feeds_sha256"]
        (saved / "manifest.json").write_text(json.dumps(manifest))
        target = saved / "feeds" / "shard-0000" / "daily_dwell.npy"
        with open(target, "wb") as handle:
            np.save(handle, np.zeros((3, 1, 8), dtype=np.float32))
        with pytest.raises(RunStoreError, match="inconsistent"):
            load_feeds(saved)

    def test_manifest_mobility_disagreement(self, saved):
        import json

        manifest = json.loads((saved / "manifest.json").read_text())
        manifest["num_users"] = manifest["num_users"] + 1
        (saved / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(RunStoreError, match="manifest promises"):
            load_feeds(saved)

    def test_missing_kpis(self, saved):
        (saved / "radio_kpis.csv").unlink()
        with pytest.raises(RunStoreError, match="radio_kpis.csv"):
            load_feeds(saved)

    def test_error_carries_the_path(self, saved):
        (saved / "rat_time.csv").unlink()
        with pytest.raises(RunStoreError) as excinfo:
            load_feeds(saved)
        assert excinfo.value.path == saved / "rat_time.csv"


class TestFeedDigests:
    """save_feeds records per-feed SHA-256; load_feeds verifies them."""

    FILES = (
        "radio_kpis.csv",
        "rat_time.csv",
        "config.pkl",
        "feeds/shard-0000/rows.npy",
        "feeds/shard-0000/user_ids.npy",
        "feeds/shard-0000/anchor_sites.npy",
        "feeds/shard-0000/daily_dwell.npy",
        "feeds/shard-0000/night_dwell.npy",
    )

    @pytest.fixture
    def saved(self, run_feeds, tmp_path):
        return save_feeds(run_feeds, tmp_path / "run")

    def test_manifest_records_every_feed(self, saved):
        import hashlib
        import json

        digests = json.loads(
            (saved / "manifest.json").read_text()
        )["feeds_sha256"]
        assert sorted(digests) == sorted(self.FILES)
        for name, recorded in digests.items():
            actual = hashlib.sha256(
                (saved / name).read_bytes()
            ).hexdigest()
            assert recorded == actual

    def test_feeds_carry_their_digests(self, run_feeds, saved):
        import json

        assert run_feeds.source_digests == json.loads(
            (saved / "manifest.json").read_text()
        )["feeds_sha256"]
        assert load_feeds(saved).source_digests == run_feeds.source_digests

    @pytest.mark.parametrize(
        "name",
        [
            "radio_kpis.csv",
            "rat_time.csv",
            "config.pkl",
            "feeds/shard-0000/daily_dwell.npy",
        ],
    )
    def test_tampered_feed_is_refused(self, saved, name):
        with open(saved / name, "ab") as handle:
            handle.write(b" ")
        with pytest.raises(RunStoreError, match="digest") as excinfo:
            load_feeds(saved)
        assert excinfo.value.path == saved / name

    def test_digestless_manifest_still_loads(self, saved):
        import json

        manifest = json.loads((saved / "manifest.json").read_text())
        del manifest["feeds_sha256"]
        (saved / "manifest.json").write_text(json.dumps(manifest))
        feeds = load_feeds(saved)
        assert feeds.source_digests is None


class TestAtomicPersistence:
    """A crash mid-save never leaves a run a reader half-accepts.

    Every file is written tmp+rename with ``manifest.json`` last, so a
    torn save is either invisible (no manifest yet) or detected by the
    digest check (old manifest, new files) — always a
    :class:`RunStoreError` naming the incomplete file.
    """

    def test_torn_fresh_save_is_unloadable(
        self, run_feeds, tmp_path, monkeypatch
    ):
        # Crash before the manifest commit point: the directory is not
        # a saved run, and the error names the missing manifest.
        import repro.io.store as store_module

        def boom(text, final):
            raise OSError("disk died before the manifest commit")

        monkeypatch.setattr(store_module, "_atomic_text", boom)
        target = tmp_path / "torn"
        with pytest.raises(OSError):
            save_feeds(run_feeds, target)
        with pytest.raises(RunStoreError, match="manifest.json") as exc:
            load_feeds(target)
        assert exc.value.path == target / "manifest.json"

    def test_torn_resave_is_detected_by_digests(
        self, run_feeds, tmp_path, monkeypatch
    ):
        # A save over an existing good run that dies mid-rename leaves
        # the OLD manifest next to a mix of old and new files; the
        # digest check must refuse the run, naming an offending file.
        import os as os_module

        import repro.io.columnar as columnar_module

        target = save_feeds(run_feeds, tmp_path / "run")
        # Perturb the feeds so the re-saved bytes differ (new seed's
        # dwell values), then crash partway through the shard renames.
        other = Simulator(SimulationConfig.tiny(seed=99)).run()

        real_replace = os_module.replace
        calls = {"n": 0}

        def flaky_replace(src, dst):
            calls["n"] += 1
            if calls["n"] > 2:
                raise OSError("crash mid-rename")
            return real_replace(src, dst)

        monkeypatch.setattr(
            columnar_module.os, "replace", flaky_replace
        )
        with pytest.raises(OSError):
            save_feeds(other, target)
        monkeypatch.undo()
        with pytest.raises(RunStoreError) as exc:
            load_feeds(target)
        assert exc.value.path is not None
        assert str(exc.value.path).startswith(str(target))

    def test_save_leaves_no_temporaries(self, run_feeds, tmp_path):
        path = save_feeds(run_feeds, tmp_path / "clean")
        assert not list(path.rglob("*.tmp"))

    def test_resave_drops_stale_shards(self, run_feeds, tmp_path):
        # A leftover shard directory from an older, wider partition
        # must not survive a re-save with fewer shards.
        path = save_feeds(run_feeds, tmp_path / "run")
        stale = path / "feeds" / "shard-0099"
        stale.mkdir(parents=True)
        (stale / "rows.npy").write_bytes(b"junk")
        save_feeds(run_feeds, path)
        assert not stale.exists()
        load_feeds(path)


class TestFormatV1Compat:
    """Runs saved by the pre-columnar store (mobility.npz) still load."""

    @pytest.fixture
    def v1_dir(self, run_feeds, tmp_path):
        import hashlib
        import json

        path = save_feeds(run_feeds, tmp_path / "v1")
        # Rebuild the historical layout from the saved run: a single
        # compressed archive instead of the feeds/ partition.
        mobility = run_feeds.mobility
        np.savez_compressed(
            path / "mobility.npz",
            user_ids=mobility.user_ids,
            anchor_sites=mobility.anchor_sites,
            daily_dwell=np.stack(
                [mobility.dwell(d) for d in range(mobility.num_days)]
            ),
            night_dwell=np.stack(
                [mobility.night(d) for d in range(mobility.num_days)]
            ),
        )
        import shutil

        shutil.rmtree(path / "feeds")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = 1
        del manifest["feeds"]
        manifest["feeds_sha256"] = {
            name: hashlib.sha256(
                (path / name).read_bytes()
            ).hexdigest()
            for name in (
                "radio_kpis.csv", "rat_time.csv", "config.pkl",
                "mobility.npz",
            )
        }
        (path / "manifest.json").write_text(json.dumps(manifest))
        return path

    def test_v1_run_loads_identically(self, run_feeds, v1_dir):
        feeds = load_feeds(v1_dir)
        assert np.array_equal(
            feeds.mobility.user_ids, run_feeds.mobility.user_ids
        )
        for day in (0, run_feeds.mobility.num_days - 1):
            assert np.array_equal(
                feeds.mobility.dwell(day), run_feeds.mobility.dwell(day)
            )

    def test_v1_missing_archive_is_precise(self, v1_dir):
        import json

        manifest = json.loads((v1_dir / "manifest.json").read_text())
        del manifest["feeds_sha256"]
        (v1_dir / "manifest.json").write_text(json.dumps(manifest))
        (v1_dir / "mobility.npz").unlink()
        with pytest.raises(RunStoreError, match="mobility.npz"):
            load_feeds(v1_dir)

    def test_v1_deleted_digested_file_is_refused(self, v1_dir):
        target = v1_dir / "mobility.npz"
        target.unlink()
        with pytest.raises(RunStoreError, match="mobility.npz") as exc:
            load_feeds(v1_dir)
        assert exc.value.path == target
