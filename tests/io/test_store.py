"""Tests for feed persistence (save/load round trip)."""

import numpy as np
import pytest

from repro.io import load_feeds, save_feeds
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator


@pytest.fixture(scope="module")
def run_feeds():
    return Simulator(SimulationConfig.tiny(seed=21)).run()


@pytest.fixture(scope="module")
def reloaded(run_feeds, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "run"
    save_feeds(run_feeds, path)
    return load_feeds(path)


class TestRoundTrip:
    def test_kpis_identical(self, run_feeds, reloaded):
        original = run_feeds.radio_kpis
        back = reloaded.radio_kpis
        assert len(back) == len(original)
        assert np.allclose(
            back["dl_volume_mb"], original["dl_volume_mb"]
        )
        assert back["postcode"].tolist() == original["postcode"].tolist()

    def test_mobility_identical(self, run_feeds, reloaded):
        assert np.array_equal(
            reloaded.mobility.user_ids, run_feeds.mobility.user_ids
        )
        assert np.array_equal(
            reloaded.mobility.anchor_sites,
            run_feeds.mobility.anchor_sites,
        )
        for day in (0, 10, run_feeds.mobility.num_days - 1):
            assert np.allclose(
                reloaded.mobility.dwell(day), run_feeds.mobility.dwell(day)
            )
            assert np.allclose(
                reloaded.mobility.night(day), run_feeds.mobility.night(day)
            )

    def test_world_rebuilt_identically(self, run_feeds, reloaded):
        assert np.array_equal(
            reloaded.agents.home_site, run_feeds.agents.home_site
        )
        assert reloaded.topology.num_sites == run_feeds.topology.num_sites
        assert (
            reloaded.geography.total_residents
            == run_feeds.geography.total_residents
        )

    def test_upgrade_day_preserved(self, run_feeds, reloaded):
        assert (
            reloaded.interconnect_upgrade_day
            == run_feeds.interconnect_upgrade_day
        )

    def test_analysis_matches_after_reload(self, run_feeds, reloaded):
        from repro.core import CovidImpactStudy

        original = CovidImpactStudy(run_feeds).fig3()["gyration"]
        back = CovidImpactStudy(reloaded).fig3()["gyration"]
        assert np.allclose(
            original.values["UK"], back.values["UK"], atol=1e-3
        )

    def test_manifest_written(self, run_feeds, tmp_path):
        path = save_feeds(run_feeds, tmp_path / "m")
        assert (path / "manifest.json").exists()
        assert (path / "config.pkl").exists()
        assert (path / "radio_kpis.csv").exists()
        assert (path / "mobility.npz").exists()

    def test_configless_feeds_rejected(self, run_feeds, tmp_path):
        import dataclasses

        stripped = dataclasses.replace(run_feeds, config=None)
        with pytest.raises(ValueError, match="config"):
            save_feeds(stripped, tmp_path / "x")

    def test_bad_version_rejected(self, run_feeds, tmp_path):
        import json

        path = save_feeds(run_feeds, tmp_path / "v")
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format_version"] = 99
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="version"):
            load_feeds(path)
