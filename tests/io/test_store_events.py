"""The per-shard signalling-event partition: round-trips and guards.

PR 10 extends the columnar layout so the event feed persists per shard
(``shard-NNNN/events_*.npy`` plus day offsets) instead of riding along
eagerly.  The promises pinned here: a save → lazy load round-trip
serves every day frame bitwise equal to the engine's in-memory dict,
digests cover the event files (tampering is named), a v2 run *without*
events still loads, the engine's streamed writer commits the same
bytes as a dict save, and event-bearing runs refuse the live-append
path (events stream only at full saves for now).
"""

import datetime as dt

import numpy as np
import pytest

from repro.core.sessionize import (
    sessionize_events,
    sessionize_events_stream,
)
from repro.io import load_feeds, save_feeds
from repro.io.columnar import (
    EVENT_COLUMNS,
    ShardedEventFeed,
    event_relative_paths,
)
from repro.io.store import RunStoreError, append_feeds
from repro.simulation.clock import StudyCalendar
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator

SHARD_COUNTS = (1, 2, 4)

_CALENDAR = StudyCalendar(first_day=dt.date(2020, 2, 24), num_days=10)


def _config(shards: int, *, signaling: bool = True) -> SimulationConfig:
    return (
        SimulationConfig.tiny(seed=59)
        .with_overrides(
            num_users=180,
            target_site_count=30,
            calendar=_CALENDAR,
            emit_signaling=signaling,
        )
        .with_parallelism(shards, workers=1)
    )


_FEEDS: dict[int, object] = {}


def _feeds(shards: int):
    if shards not in _FEEDS:
        _FEEDS[shards] = Simulator(_config(shards)).run()
    return _FEEDS[shards]


def _assert_days_bitwise(lazy_feed, eager_dict):
    assert len(lazy_feed) == len(eager_dict)
    for day, eager in eager_dict.items():
        streamed = lazy_feed[day]
        for column, _ in EVENT_COLUMNS:
            assert streamed[column].dtype == eager[column].dtype
            assert np.array_equal(streamed[column], eager[column]), (
                f"day {day} column {column} diverged"
            )


@pytest.mark.parametrize("shards", SHARD_COUNTS)
class TestRoundTrip:
    def test_lazy_load_serves_days_bitwise(self, shards, tmp_path):
        target = tmp_path / "run"
        save_feeds(_feeds(shards), target)
        loaded = load_feeds(target, lazy=True)
        assert isinstance(loaded.signaling, ShardedEventFeed)
        _assert_days_bitwise(loaded.signaling, _feeds(shards).signaling)

    def test_eager_load_materializes_the_dict(self, shards, tmp_path):
        target = tmp_path / "run"
        save_feeds(_feeds(shards), target)
        loaded = load_feeds(target)
        assert isinstance(loaded.signaling, dict)
        _assert_days_bitwise(loaded.signaling, _feeds(shards).signaling)

    def test_streamed_writer_commits_identical_bytes(
        self, shards, tmp_path
    ):
        # The engine streaming events shard-by-shard during simulation
        # must write the exact bytes a save of the eager dict writes.
        streamed_dir = tmp_path / "streamed"
        config = _config(shards)
        feeds = Simulator(config).run(stream_dir=streamed_dir)
        save_feeds(feeds, streamed_dir)
        dict_dir = tmp_path / "memory"
        save_feeds(_feeds(shards), dict_dir)
        for relative in event_relative_paths(shards):
            streamed = (streamed_dir / relative).read_bytes()
            memory = (dict_dir / relative).read_bytes()
            assert streamed == memory, f"{relative}: bytes differ"


class TestDigestsAndGuards:
    @pytest.fixture
    def run(self, tmp_path):
        target = tmp_path / "run"
        save_feeds(_feeds(2), target)
        return target

    def test_tampered_event_file_is_named(self, run):
        victim = run / "feeds" / "shard-0000" / "events_user_id.npy"
        payload = bytearray(victim.read_bytes())
        payload[-1] ^= 0xFF
        victim.write_bytes(payload)
        with pytest.raises(RunStoreError, match="events_user_id"):
            load_feeds(run, lazy=True)

    def test_missing_event_file_is_named(self, run):
        victim = run / "feeds" / "shard-0001" / "events_offsets.npy"
        victim.unlink()
        with pytest.raises(RunStoreError, match="events_offsets"):
            load_feeds(run, lazy=True)

    def test_v2_without_events_still_loads(self, tmp_path):
        target = tmp_path / "run"
        save_feeds(
            Simulator(_config(2, signaling=False)).run(), target
        )
        loaded = load_feeds(target, lazy=True)
        assert loaded.signaling is None

    def test_resave_without_signaling_drops_events(self, tmp_path):
        import dataclasses

        target = tmp_path / "run"
        save_feeds(_feeds(2), target)
        stripped = dataclasses.replace(_feeds(2), signaling=None)
        save_feeds(stripped, target)
        loaded = load_feeds(target, lazy=True)
        assert loaded.signaling is None
        leftovers = list((target / "feeds").rglob("events_*.npy"))
        assert leftovers == []

    def test_append_rejects_event_bearing_runs(self, tmp_path):
        target = tmp_path / "run"
        save_feeds(_feeds(2), target)
        base = load_feeds(target, lazy=True)
        with pytest.raises(RunStoreError, match="event"):
            append_feeds(base, _feeds(2), target)


class TestStreamedSessionization:
    def test_chunked_equals_whole_day(self, tmp_path):
        target = tmp_path / "run"
        save_feeds(_feeds(2), target)
        events = load_feeds(target, lazy=True).signaling
        for day in (0, 4, 9):
            whole = sessionize_events(events.day(day))
            chunked = sessionize_events_stream(events.chunks(day))
            for column in ("user_id", "site_id", "dwell_s"):
                assert np.array_equal(whole[column], chunked[column])

    def test_eager_dict_matches_streamed(self, tmp_path):
        target = tmp_path / "run"
        save_feeds(_feeds(2), target)
        events = load_feeds(target, lazy=True).signaling
        eager = _feeds(2).signaling
        day = 3
        streamed = sessionize_events_stream(events.chunks(day))
        reference = sessionize_events(eager[day])
        for column in ("user_id", "site_id", "dwell_s"):
            assert np.array_equal(streamed[column], reference[column])
