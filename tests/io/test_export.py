"""Tests for the analysis CSV export."""

import numpy as np
import pytest

from repro.core import CovidImpactStudy
from repro.frames import read_csv
from repro.io import export_analysis
from repro.simulation.config import SimulationConfig


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    study = CovidImpactStudy.run(SimulationConfig.tiny(seed=81))
    path = tmp_path_factory.mktemp("export") / "analysis"
    return study, export_analysis(study, path)


EXPECTED_FILES = (
    "mobility_daily.csv",
    "mobility_weekly.csv",
    "performance_weekly.csv",
    "fig2_census.csv",
    "fig4_cases.csv",
    "fig7_matrix.csv",
    "summary.csv",
)


class TestExport:
    def test_all_files_written(self, exported):
        __, path = exported
        for name in EXPECTED_FILES:
            assert (path / name).exists(), name

    def test_daily_series_round_trip(self, exported):
        study, path = exported
        daily = read_csv(path / "mobility_daily.csv")
        gyration = daily.filter(daily["metric"] == "gyration")
        original = study.fig3()["gyration"].values["UK"]
        assert np.allclose(
            np.sort(gyration["change_pct"]), np.sort(original), atol=1e-4
        )

    def test_performance_covers_all_figures(self, exported):
        __, path = exported
        perf = read_csv(path / "performance_weekly.csv")
        assert set(np.unique(perf["figure"]).tolist()) == {
            "fig8", "fig9", "fig10", "fig11", "fig12",
        }

    def test_summary_matches_study(self, exported):
        study, path = exported
        table = read_csv(path / "summary.csv")
        exported_values = dict(zip(table["metric"], table["value"]))
        for key, value in study.summary().items():
            assert exported_values[key] == pytest.approx(value, abs=1e-6)

    def test_fig7_matrix_shape(self, exported):
        study, path = exported
        matrix = read_csv(path / "fig7_matrix.csv")
        assert len(matrix) == len(study.fig7().counties)

    def test_dates_in_daily_export(self, exported):
        __, path = exported
        daily = read_csv(path / "mobility_daily.csv")
        assert daily["date"][0].startswith("2020-")
