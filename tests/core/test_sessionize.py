"""Tests for sessionization, including event-mode / dwell-mode parity."""

import numpy as np
import pytest

from repro.core import sessionize_events
from repro.frames import Frame
from repro.network.signaling import DwellSegments, SignalingGenerator


def events_frame(rows):
    return Frame.from_rows(
        rows, columns=["user_id", "site_id", "timestamp_s"]
    )


class TestSessionize:
    def test_simple_two_segments(self):
        events = events_frame(
            [
                {"user_id": 1, "site_id": 10, "timestamp_s": 0.0},
                {"user_id": 1, "site_id": 20, "timestamp_s": 30_000.0},
            ]
        )
        out = sessionize_events(events)
        dwell = {
            (u, s): d
            for u, s, d in zip(out["user_id"], out["site_id"], out["dwell_s"])
        }
        assert dwell[(1, 10)] == pytest.approx(30_000.0)
        assert dwell[(1, 20)] == pytest.approx(56_400.0)

    def test_total_dwell_covers_day(self):
        events = events_frame(
            [
                {"user_id": 1, "site_id": 10, "timestamp_s": 100.0},
                {"user_id": 1, "site_id": 20, "timestamp_s": 40_000.0},
                {"user_id": 1, "site_id": 10, "timestamp_s": 70_000.0},
            ]
        )
        out = sessionize_events(events)
        # Dwell from first event to end of day.
        assert out["dwell_s"].sum() == pytest.approx(86_400.0 - 100.0)

    def test_repeated_site_accumulates(self):
        events = events_frame(
            [
                {"user_id": 1, "site_id": 10, "timestamp_s": 0.0},
                {"user_id": 1, "site_id": 20, "timestamp_s": 20_000.0},
                {"user_id": 1, "site_id": 10, "timestamp_s": 40_000.0},
            ]
        )
        out = sessionize_events(events)
        dwell = dict(zip(out["site_id"], out["dwell_s"]))
        assert dwell[10] == pytest.approx(20_000.0 + 46_400.0)

    def test_multiple_users_segmented(self):
        events = events_frame(
            [
                {"user_id": 2, "site_id": 30, "timestamp_s": 0.0},
                {"user_id": 1, "site_id": 10, "timestamp_s": 0.0},
            ]
        )
        out = sessionize_events(events)
        assert len(out) == 2
        assert np.all(out["dwell_s"] == pytest.approx(86_400.0))

    def test_unsorted_input_handled(self):
        events = events_frame(
            [
                {"user_id": 1, "site_id": 20, "timestamp_s": 50_000.0},
                {"user_id": 1, "site_id": 10, "timestamp_s": 0.0},
            ]
        )
        out = sessionize_events(events)
        dwell = dict(zip(out["site_id"], out["dwell_s"]))
        assert dwell[10] == pytest.approx(50_000.0)

    def test_empty_feed(self):
        out = sessionize_events(
            Frame(
                {
                    "user_id": np.empty(0, dtype=np.int64),
                    "site_id": np.empty(0, dtype=np.int64),
                    "timestamp_s": np.empty(0),
                }
            )
        )
        assert len(out) == 0

    def test_custom_day_end(self):
        events = events_frame(
            [{"user_id": 1, "site_id": 10, "timestamp_s": 1000.0}]
        )
        out = sessionize_events(events, day_end_s=2000.0)
        assert out["dwell_s"][0] == pytest.approx(1000.0)


class TestEventDwellParity:
    """The paper-critical consistency check: the passive-measurement
    path (signalling events → sessionization) recovers the simulator's
    ground-truth dwell times."""

    def make_segments(self, seed=3, users=40):
        rng = np.random.default_rng(seed)
        rows = []
        for user in range(users):
            boundaries = np.sort(
                rng.choice(np.arange(1, 24), size=3, replace=False)
            ) * 3600.0
            starts = np.concatenate([[0.0], boundaries])
            ends = np.concatenate([boundaries, [86_400.0]])
            sites = rng.choice(100, size=4, replace=False)
            for site, start, end in zip(sites, starts, ends):
                rows.append((user, site, start, end - start))
        users_arr, sites_arr, starts_arr, durations_arr = map(
            np.asarray, zip(*rows)
        )
        return DwellSegments(
            user_ids=users_arr.astype(np.int64),
            site_ids=sites_arr.astype(np.int64),
            start_s=starts_arr.astype(np.float64),
            duration_s=durations_arr.astype(np.float64),
        )

    def test_sessionized_dwell_matches_ground_truth(self):
        segments = self.make_segments()
        generator = SignalingGenerator()
        feed = generator.generate_day(segments, np.random.default_rng(5))
        out = sessionize_events(feed)

        recovered = {
            (int(u), int(s)): float(d)
            for u, s, d in zip(
                out["user_id"], out["site_id"], out["dwell_s"]
            )
        }
        truth: dict[tuple[int, int], float] = {}
        for u, s, d in zip(
            segments.user_ids, segments.site_ids, segments.duration_s
        ):
            truth[(int(u), int(s))] = truth.get((int(u), int(s)), 0.0) + float(d)

        assert set(recovered) == set(truth)
        for key, expected in truth.items():
            # Small offsets from in-segment events (auth +0.5s, detach
            # -0.5s) are below a per-segment second.
            assert recovered[key] == pytest.approx(expected, abs=5.0)

    def test_parity_preserves_entropy(self):
        from repro.core import mobility_entropy

        segments = self.make_segments(seed=9)
        generator = SignalingGenerator()
        feed = generator.generate_day(segments, np.random.default_rng(2))
        out = sessionize_events(feed)

        def entropy_from(pairs):
            users = sorted({u for u, _ in pairs})
            k = max(sum(1 for key in pairs if key[0] == u) for u in users)
            dwell = np.zeros((len(users), k))
            sites = np.zeros((len(users), k), dtype=np.int64)
            for row, user in enumerate(users):
                items = [
                    (s, d) for (u, s), d in pairs.items() if u == user
                ]
                for col, (site, duration) in enumerate(items):
                    dwell[row, col] = duration
                    sites[row, col] = site
            return mobility_entropy(dwell, sites)

        recovered = {
            (int(u), int(s)): float(d)
            for u, s, d in zip(
                out["user_id"], out["site_id"], out["dwell_s"]
            )
        }
        truth: dict[tuple[int, int], float] = {}
        for u, s, d in zip(
            segments.user_ids, segments.site_ids, segments.duration_s
        ):
            truth[(int(u), int(s))] = truth.get((int(u), int(s)), 0.0) + float(d)
        np.testing.assert_allclose(
            entropy_from(recovered), entropy_from(truth), atol=0.01
        )
