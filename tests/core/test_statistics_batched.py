"""Batched daily-metrics path vs the per-day oracle, bitwise.

``compute_daily_metrics`` flattens several days into one kernel call;
the historical day-at-a-time loop survives behind
``REPRO_ANALYSIS_NAIVE=1`` as the differential oracle.  Because the
kernels are strictly row-independent, every batch size must reproduce
the loop *bitwise* — not approximately.  Also covers the ``out=``
buffer contract of :func:`top_tower_filter` and the empty-mask NaN
behavior of the aggregate means.
"""

import warnings

import numpy as np
import pytest

from repro.core.statistics import (
    MobilityDailyMetrics,
    _compute_daily_metrics_loop,
    compute_daily_metrics,
    top_tower_filter,
)


@pytest.fixture(scope="module")
def oracle(feeds):
    return _compute_daily_metrics_loop(feeds, "weighted", 20)


def assert_bitwise(actual: MobilityDailyMetrics, expected: MobilityDailyMetrics):
    assert actual.entropy.dtype == expected.entropy.dtype
    assert np.array_equal(actual.entropy, expected.entropy)
    assert np.array_equal(actual.gyration_km, expected.gyration_km)
    assert np.array_equal(actual.user_ids, expected.user_ids)


class TestBatchedEqualsLoop:
    @pytest.mark.parametrize("batch_days", [1, 3, 17, None])
    def test_bitwise_across_batch_sizes(self, feeds, oracle, batch_days):
        batched = compute_daily_metrics(feeds, batch_days=batch_days)
        assert_bitwise(batched, oracle)

    def test_paper_gyration_mode(self, feeds):
        batched = compute_daily_metrics(feeds, gyration_mode="paper")
        loop = _compute_daily_metrics_loop(feeds, "paper", 20)
        assert_bitwise(batched, loop)

    def test_oversized_batch_clamps_to_study(self, feeds, oracle):
        batched = compute_daily_metrics(feeds, batch_days=10_000)
        assert_bitwise(batched, oracle)

    def test_naive_env_gate_selects_the_loop(self, feeds, oracle, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYSIS_NAIVE", "1")
        assert_bitwise(compute_daily_metrics(feeds), oracle)

    def test_tight_top_towers_cut(self, feeds):
        # Exercise the argpartition branch: a cut below the anchor
        # count zeroes entries in both paths identically.
        k = feeds.mobility.anchor_sites.shape[1]
        cut = max(1, k - 2)
        batched = compute_daily_metrics(feeds, top_towers=cut, batch_days=5)
        loop = _compute_daily_metrics_loop(feeds, "weighted", cut)
        assert_bitwise(batched, loop)


class TestTopTowerFilterOut:
    def setup_method(self):
        rng = np.random.default_rng(7)
        self.dwell = rng.random((50, 12)) * 3600.0

    def test_out_buffer_matches_copy(self):
        before = self.dwell.copy()
        expected = top_tower_filter(self.dwell, 5)
        out = np.empty_like(self.dwell)
        result = top_tower_filter(self.dwell, 5, out=out)
        assert result is out
        assert np.array_equal(out, expected)
        assert np.array_equal(self.dwell, before)  # input untouched

    def test_in_place_filtering(self):
        expected = top_tower_filter(self.dwell, 5)
        buffer = self.dwell.copy()
        result = top_tower_filter(buffer, 5, out=buffer)
        assert result is buffer
        assert np.array_equal(buffer, expected)

    def test_identity_cut_still_copies_into_out(self):
        out = np.zeros_like(self.dwell)
        result = top_tower_filter(self.dwell, 50, out=out)
        assert result is out
        assert np.array_equal(out, self.dwell)

    def test_without_out_returns_fresh_array(self):
        result = top_tower_filter(self.dwell, 50)
        assert result is not self.dwell
        result[:] = 0.0
        assert (self.dwell > 0).all()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            top_tower_filter(self.dwell, 5, out=np.empty((50, 11)))

    def test_nonpositive_cut_rejected(self):
        with pytest.raises(ValueError, match="top_towers"):
            top_tower_filter(self.dwell, 0)


class TestEmptyMaskMeans:
    @pytest.fixture
    def metrics(self):
        rng = np.random.default_rng(3)
        return MobilityDailyMetrics(
            user_ids=np.arange(6),
            entropy=rng.random((4, 6)).astype(np.float32),
            gyration_km=rng.random((4, 6)).astype(np.float32),
        )

    def test_empty_mask_is_nan_without_warning(self, metrics):
        mask = np.zeros(6, dtype=bool)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            means = metrics.daily_mean_subset("entropy", mask)
        assert means.shape == (4,)
        assert np.isnan(means).all()

    def test_zero_user_study_daily_mean(self):
        empty = MobilityDailyMetrics(
            user_ids=np.empty(0, dtype=np.int64),
            entropy=np.empty((4, 0), dtype=np.float32),
            gyration_km=np.empty((4, 0), dtype=np.float32),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            means = empty.daily_mean("gyration")
        assert np.isnan(means).all()
        assert means.dtype == np.float32

    def test_nonempty_mask_unchanged(self, metrics):
        mask = np.array([True, False, True, False, False, False])
        expected = metrics.entropy[:, mask].mean(axis=1)
        assert np.array_equal(
            metrics.daily_mean_subset("entropy", mask), expected
        )

    def test_unknown_metric_rejected(self, metrics):
        with pytest.raises(KeyError):
            metrics.daily_mean("speed")
