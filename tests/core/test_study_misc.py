"""Tests for the study driver, correlations, RAT shares and reports."""

import numpy as np
import pytest

from repro.core import CovidImpactStudy, rat_time_share
from repro.core.correlation import pearson
from repro.core.report import (
    format_week_header,
    render_series_block,
    sparkline,
)
from repro.frames import Frame
from repro.geo import oac_table


class TestPearson:
    def test_perfect_correlation(self):
        x = np.arange(10, dtype=float)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)

    def test_anticorrelation(self):
        x = np.arange(10, dtype=float)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_constant_series_zero(self):
        assert pearson(np.ones(5), np.arange(5.0)) == 0.0

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            pearson(np.array([1.0]), np.array([2.0]))

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            pearson(np.ones(3), np.ones(4))


class TestRatShare:
    def test_shares_sum_to_one(self, study):
        shares = study.rat_share()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_4g_dominates(self, study):
        shares = study.rat_share()
        # Paper §2.4: ~75% of connected time on 4G.
        assert shares["4G"] == pytest.approx(0.75, abs=0.03)
        assert shares["4G"] > shares["3G"] > shares["2G"]

    def test_empty_feed_rejected(self):
        empty = Frame(
            {
                "day": np.array([0]),
                "rat": np.array(["4G"]),
                "connected_seconds": np.array([0.0]),
            }
        )
        with pytest.raises(ValueError):
            rat_time_share(empty)


class TestTable1:
    def test_eight_rows(self, study):
        assert len(study.table1()) == 8
        assert study.table1() == oac_table()


class TestSummary:
    def test_summary_keys_cover_takeaways(self, study):
        summary = study.summary()
        expected = {
            "gyration_change_lockdown_pct",
            "entropy_change_lockdown_pct",
            "home_detection_rate",
            "fig2_r_squared",
            "fig4_pearson_pre_declaration",
            "dl_volume_week10_pct",
            "dl_volume_min_pct",
            "ul_volume_lockdown_min_pct",
            "voice_volume_peak_pct",
            "voice_dl_loss_peak_pct",
            "inner_london_away_share_lockdown",
            "rat_share_4g",
        }
        assert expected <= set(summary)

    def test_summary_values_finite(self, study):
        for key, value in study.summary().items():
            assert np.isfinite(value), key

    def test_headline_directions(self, study):
        summary = study.summary()
        assert summary["gyration_change_lockdown_pct"] < -30
        assert summary["dl_volume_min_pct"] < -15
        assert summary["voice_volume_peak_pct"] > 100
        assert summary["voice_dl_loss_peak_pct"] > 100
        assert 0.05 < summary["inner_london_away_share_lockdown"] < 0.2

    def test_report_renders(self, study):
        report = study.report()
        assert "Fig 3" in report
        assert "Fig 8" in report
        assert "Headline numbers" in report


class TestReportHelpers:
    def test_sparkline_length(self):
        assert len(sparkline(np.arange(10.0))) == 10

    def test_sparkline_constant(self):
        assert sparkline(np.ones(4)) == "▄▄▄▄"

    def test_sparkline_empty(self):
        assert sparkline(np.array([])) == ""

    def test_sparkline_nan(self):
        out = sparkline(np.array([1.0, np.nan, 2.0]))
        assert out[1] == "·"

    def test_week_header(self):
        header = format_week_header(np.array([9, 10]))
        assert "9" in header and "10" in header

    def test_render_block(self):
        block = render_series_block(
            "Panel",
            np.array([9, 10]),
            {"UK": np.array([0.0, -10.0])},
        )
        assert "Panel" in block
        assert "UK" in block
        assert "-10.0" in block


class TestStudyConstruction:
    def test_from_existing_feeds(self, feeds):
        study = CovidImpactStudy(feeds)
        assert study.feeds is feeds

    def test_gyration_mode_paper(self, feeds):
        study = CovidImpactStudy(feeds, gyration_mode="paper")
        metrics = study.metrics
        assert metrics.gyration_km.shape[0] == feeds.calendar.num_days
