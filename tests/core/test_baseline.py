"""Tests for the week-9 baseline machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import daily_pct_change, weekly_median_delta
from repro.core.baseline import weekly_mean, weekly_mean_stack


class TestDailyPctChange:
    def test_baseline_week_averages_to_zero(self):
        values = np.array([10.0, 12.0, 8.0, 10.0, 20.0])
        weeks = np.array([9, 9, 9, 10, 10])
        change = daily_pct_change(values, weeks)
        assert change[:3].mean() == pytest.approx(0.0)
        assert change[4] == pytest.approx(100.0)

    def test_explicit_baseline(self):
        values = np.array([5.0, 10.0])
        weeks = np.array([10, 10])
        change = daily_pct_change(values, weeks, baseline_value=10.0)
        assert change.tolist() == [-50.0, 0.0]

    def test_missing_baseline_week_raises(self):
        with pytest.raises(ValueError, match="baseline week"):
            daily_pct_change(np.array([1.0]), np.array([10]))

    def test_zero_baseline_raises(self):
        with pytest.raises(ValueError, match="zero"):
            daily_pct_change(
                np.array([0.0, 1.0]), np.array([9, 10])
            )

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            daily_pct_change(np.array([1.0, 2.0]), np.array([9]))

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=1e4),
            min_size=14,
            max_size=14,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_baseline_week_mean_is_zero_property(self, raw):
        values = np.array(raw)
        weeks = np.array([9] * 7 + [10] * 7)
        change = daily_pct_change(values, weeks)
        assert change[:7].mean() == pytest.approx(0.0, abs=1e-6)


class TestWeeklyMean:
    def test_groups_by_week(self):
        values = np.array([1.0, 3.0, 10.0, 20.0])
        weeks = np.array([9, 9, 10, 10])
        out_weeks, means = weekly_mean(values, weeks)
        assert out_weeks.tolist() == [9, 10]
        assert means.tolist() == [2.0, 15.0]

    def test_unsorted_weeks(self):
        values = np.array([10.0, 1.0, 20.0, 3.0])
        weeks = np.array([10, 9, 10, 9])
        out_weeks, means = weekly_mean(values, weeks)
        assert out_weeks.tolist() == [9, 10]
        assert means.tolist() == [2.0, 15.0]

    def test_naive_switch_matches(self, monkeypatch):
        values = np.arange(21, dtype=np.float64)
        weeks = np.repeat([9, 10, 11], 7)
        fast = weekly_mean(values, weeks)
        monkeypatch.setenv("REPRO_FRAMES_NAIVE", "1")
        slow = weekly_mean(values, weeks)
        assert np.array_equal(fast[0], slow[0])
        assert np.array_equal(fast[1], slow[1])


class TestWeeklyMeanStack:
    def test_matches_per_row_weekly_mean(self):
        rng = np.random.default_rng(3)
        series = rng.normal(size=(4, 21))
        weeks = np.repeat([9, 10, 11], 7)
        stack_weeks, stacked = weekly_mean_stack(series, weeks)
        assert stacked.shape == (4, 3)
        for row in range(4):
            row_weeks, row_means = weekly_mean(series[row], weeks)
            assert np.array_equal(stack_weeks, row_weeks)
            assert np.array_equal(stacked[row], row_means)

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            weekly_mean_stack(np.zeros((2, 5)), np.array([9, 9, 10]))


class TestWeeklyMedianDelta:
    def test_median_deltas(self):
        values = np.array([10.0, 10.0, 10.0, 5.0, 5.0, 5.0])
        weeks = np.array([9, 9, 9, 10, 10, 10])
        out_weeks, deltas = weekly_median_delta(values, weeks)
        assert deltas[0] == pytest.approx(0.0)
        assert deltas[1] == pytest.approx(-50.0)

    def test_percentile_option(self):
        values = np.array([1.0, 2.0, 10.0, 1.0, 2.0, 30.0])
        weeks = np.array([9, 9, 9, 10, 10, 10])
        __, p90 = weekly_median_delta(values, weeks, percentile=90.0)
        __, p50 = weekly_median_delta(values, weeks, percentile=50.0)
        assert p90[1] != pytest.approx(p50[1])

    def test_external_baseline(self):
        values = np.array([6.0, 6.0])
        weeks = np.array([10, 10])
        __, deltas = weekly_median_delta(
            values, weeks, baseline_value=12.0
        )
        assert deltas[0] == pytest.approx(-50.0)

    def test_missing_baseline_raises(self):
        with pytest.raises(ValueError):
            weekly_median_delta(np.array([1.0]), np.array([10]))

    def test_robust_to_outliers(self):
        # The median ignores a single huge cell — the reason the paper
        # uses medians over a wide cell distribution.
        base = np.full(99, 10.0)
        values = np.concatenate([base, [1e6], base * 0.8, [1e6]])
        weeks = np.array([9] * 100 + [10] * 100)
        __, deltas = weekly_median_delta(values, weeks)
        assert deltas[1] == pytest.approx(-20.0, abs=1.0)
