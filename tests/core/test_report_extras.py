"""Tests for the scatter renderer and the full report."""

import numpy as np
import pytest

from repro.core.report import scatter_plot


class TestScatterPlot:
    def test_basic_render(self):
        x = np.linspace(0, 10, 50)
        out = scatter_plot(x, 2 * x, x_label="in", y_label="out")
        assert "in →" in out
        assert "(y = out)" in out
        assert "|" in out

    def test_diagonal_occupies_corners(self):
        x = np.array([0.0, 10.0])
        y = np.array([0.0, 10.0])
        lines = scatter_plot(x, y, width=10, height=5).split("\n")
        assert "·" in lines[0]  # max-y point on the top row
        assert "·" in lines[4]  # min-y point on the bottom row

    def test_density_markers_escalate(self):
        x = np.zeros(10)
        y = np.zeros(10)
        out = scatter_plot(x, y, width=10, height=5)
        assert "●" in out

    def test_constant_series_safe(self):
        out = scatter_plot(np.ones(5), np.arange(5.0))
        assert "|" in out

    def test_empty(self):
        assert scatter_plot(np.array([]), np.array([])) == "(no points)"

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            scatter_plot(np.ones(3), np.ones(4))

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            scatter_plot(np.ones(3), np.ones(3), width=4)


class TestFullReport:
    def test_full_report_contains_all_figures(self, study):
        report = study.report(full=True)
        for token in (
            "Fig 2", "Fig 3", "Fig 4", "Fig 5", "Fig 6", "Fig 8",
            "Fig 9", "Fig 10", "Fig 11", "Fig 12", "Headline numbers",
        ):
            assert token in report, token

    def test_default_report_is_shorter(self, study):
        assert len(study.report()) < len(study.report(full=True))
