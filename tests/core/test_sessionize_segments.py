"""Property-based tests for attribution segments (sessionize_segments).

Two structural invariants back the event-mode pipeline:

- **partition** — per user, the segments chain gaplessly from the
  user's first event to the end of the observation window, so dwell
  is neither dropped nor double-counted;
- **split invariance** — sessionizing the stream in pieces (by user
  subsets, or by a time split with a carried-over attribution event)
  yields the same per-(user, tower) dwell as sessionizing the whole
  stream, which is exactly what licenses sharded processing of the
  signalling feed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import sessionize_events, sessionize_segments
from repro.frames import Frame, concat

DAY_END = 86_400.0


@st.composite
def event_feeds(draw):
    """Feeds with integer timestamps so split-sum comparisons are exact."""
    num_users = draw(st.integers(min_value=1, max_value=6))
    rows = []
    for user in range(num_users):
        num_events = draw(st.integers(min_value=1, max_value=10))
        times = draw(
            st.lists(
                st.integers(min_value=0, max_value=86_399),
                min_size=num_events,
                max_size=num_events,
            )
        )
        for time in times:
            site = draw(st.integers(min_value=0, max_value=4))
            rows.append(
                {
                    "user_id": user,
                    "site_id": site,
                    "timestamp_s": float(time),
                }
            )
    return Frame.from_rows(
        rows, columns=["user_id", "site_id", "timestamp_s"]
    )


def dwell_map(out: Frame) -> dict[tuple[int, int], float]:
    return {
        (int(u), int(s)): float(d)
        for u, s, d in zip(out["user_id"], out["site_id"], out["dwell_s"])
    }


class TestSegmentsPartitionWindow:
    @given(event_feeds())
    @settings(max_examples=80, deadline=None)
    def test_segments_partition_first_event_to_day_end(self, events):
        segments = sessionize_segments(events)
        for user in np.unique(events["user_id"]):
            mask = segments["user_id"] == user
            starts = segments["start_s"][mask]
            ends = segments["end_s"][mask]
            first = events["timestamp_s"][events["user_id"] == user].min()
            # Chained: each segment ends where the next begins; the
            # chain spans [first event, day end] with no gap or overlap.
            assert starts[0] == first
            assert np.array_equal(ends[:-1], starts[1:])
            assert ends[-1] == DAY_END
            assert np.all(ends >= starts)
            assert (ends - starts).sum() == pytest.approx(
                DAY_END - first, abs=1e-6
            )

    @given(event_feeds())
    @settings(max_examples=60, deadline=None)
    def test_one_segment_per_event_with_its_site(self, events):
        segments = sessionize_segments(events)
        assert len(segments) == len(events)
        expected = sorted(
            zip(
                events["user_id"].tolist(),
                events["timestamp_s"].tolist(),
                events["site_id"].tolist(),
            )
        )
        actual = list(
            zip(
                segments["user_id"].tolist(),
                segments["start_s"].tolist(),
                segments["site_id"].tolist(),
            )
        )
        assert actual == expected

    @given(event_feeds())
    @settings(max_examples=60, deadline=None)
    def test_events_reduce_to_segment_sums(self, events):
        segments = sessionize_segments(events)
        truth: dict[tuple[int, int], float] = {}
        for u, s, a, b in zip(
            segments["user_id"],
            segments["site_id"],
            segments["start_s"],
            segments["end_s"],
        ):
            key = (int(u), int(s))
            truth[key] = truth.get(key, 0.0) + float(b - a)
        truth = {k: v for k, v in truth.items() if v > 0}
        assert dwell_map(sessionize_events(events)) == pytest.approx(truth)

    def test_empty_feed(self):
        empty = Frame(
            {
                "user_id": np.empty(0, dtype=np.int64),
                "site_id": np.empty(0, dtype=np.int64),
                "timestamp_s": np.empty(0),
            }
        )
        assert len(sessionize_segments(empty)) == 0

    def test_event_past_day_end_zero_length(self):
        events = Frame.from_rows(
            [{"user_id": 1, "site_id": 3, "timestamp_s": 500.0}],
            columns=["user_id", "site_id", "timestamp_s"],
        )
        segments = sessionize_segments(events, day_end_s=100.0)
        assert segments["start_s"][0] == segments["end_s"][0] == 500.0


class TestSplitInvariance:
    @given(event_feeds(), st.integers(min_value=2, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_user_shard_split_invariant(self, events, num_shards):
        # Processing disjoint user subsets independently and stacking
        # the results is identical to processing the whole stream: the
        # exact property sharded execution relies on.
        whole = sessionize_events(events).sort_by(["user_id", "site_id"])
        shards = [
            events.filter(events["user_id"] % num_shards == shard)
            for shard in range(num_shards)
        ]
        parts = [
            sessionize_events(shard) for shard in shards if len(shard)
        ]
        stacked = concat(parts).sort_by(["user_id", "site_id"])
        assert whole.column_names == stacked.column_names
        assert np.array_equal(whole["user_id"], stacked["user_id"])
        assert np.array_equal(whole["site_id"], stacked["site_id"])
        assert np.array_equal(whole["dwell_s"], stacked["dwell_s"])

    @given(event_feeds(), st.integers(min_value=1, max_value=86_398))
    @settings(max_examples=60, deadline=None)
    def test_time_split_with_carryover_invariant(self, events, cut_int):
        # Split the day at t (never an event time: events are integral,
        # t is half-integral). The first half is sessionized with the
        # window closed at t; the second half gets one carried-over
        # event per user at t for the tower attributed when the cut
        # fell. Dwell sums must recombine to the unsplit result.
        cut = cut_int + 0.5
        before = events.filter(events["timestamp_s"] < cut)
        after = events.filter(events["timestamp_s"] > cut)

        carryover_rows = []
        segments = sessionize_segments(before, day_end_s=cut)
        for user in np.unique(before["user_id"]):
            mask = segments["user_id"] == user
            carryover_rows.append(
                {
                    "user_id": int(user),
                    # The open segment at the cut is the user's last.
                    "site_id": int(segments["site_id"][mask][-1]),
                    "timestamp_s": cut,
                }
            )
        carryover = Frame.from_rows(
            carryover_rows, columns=["user_id", "site_id", "timestamp_s"]
        )

        first = dwell_map(sessionize_events(before, day_end_s=cut))
        second = dwell_map(sessionize_events(concat([carryover, after])))
        combined: dict[tuple[int, int], float] = dict(first)
        for key, value in second.items():
            combined[key] = combined.get(key, 0.0) + value
        assert combined == pytest.approx(dwell_map(sessionize_events(events)))
