"""Shared fixtures for core-analysis tests: one small full study."""

import pytest

from repro.core import CovidImpactStudy
from repro.simulation.config import SimulationConfig


@pytest.fixture(scope="session")
def study() -> CovidImpactStudy:
    """A small but complete study shared by all core tests."""
    config = SimulationConfig(
        num_users=10_000, target_site_count=600, seed=11
    )
    return CovidImpactStudy.run(config)


@pytest.fixture(scope="session")
def feeds(study):
    return study.feeds


@pytest.fixture(scope="session")
def calendar(feeds):
    return feeds.calendar
