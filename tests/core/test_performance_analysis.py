"""Tests for the network-performance figures (8–12) and §4 takeaways."""

import numpy as np
import pytest

from repro.core import performance_series
from repro.core.performance import label_kpis


class TestLabeling:
    def test_labels_attached(self, study):
        labeled = study.labeled_kpis
        for column in ("week", "county", "region", "area", "oac"):
            assert column in labeled

    def test_week_range(self, study, calendar):
        labeled = study.labeled_kpis
        assert labeled["week"].min() == calendar.weeks.min()
        assert labeled["week"].max() == calendar.weeks.max()


class TestFig8:
    def test_all_metrics_present(self, study):
        fig8 = study.fig8()
        assert set(fig8) == {
            "dl_volume_mb", "ul_volume_mb", "dl_active_users",
            "user_dl_throughput_mbps", "radio_load_pct",
            "connected_users",
        }

    def test_uk_and_regions_in_series(self, study):
        dl = study.fig8()["dl_volume_mb"]
        assert "UK" in dl.values
        assert "Inner London" in dl.values

    def test_baseline_week_zero(self, study):
        for series in study.fig8().values():
            assert series.at_week("UK", 9) == pytest.approx(0.0, abs=1e-9)

    def test_dl_week10_increase(self, study):
        dl = study.fig8()["dl_volume_mb"]
        assert 3.0 < dl.at_week("UK", 10) < 15.0

    def test_dl_lockdown_decrease(self, study):
        dl = study.fig8()["dl_volume_mb"]
        week, value = dl.minimum("UK")
        assert week >= 13
        assert -35.0 < value < -15.0

    def test_ul_roughly_flat_during_lockdown(self, study):
        ul = study.fig8()["ul_volume_mb"]
        lockdown = ul.values["UK"][ul.weeks >= 13]
        assert lockdown.min() > -12.0
        assert lockdown.max() < 10.0

    def test_throughput_drop_capped(self, study):
        throughput = study.fig8()["user_dl_throughput_mbps"]
        __, value = throughput.minimum("UK")
        assert -18.0 < value < -4.0

    def test_radio_load_decreases(self, study):
        load = study.fig8()["radio_load_pct"]
        __, value = load.minimum("UK")
        assert -30.0 < value < -8.0

    def test_inner_london_drops_most(self, study):
        dl = study.fig8()["dl_volume_mb"]
        inner = dl.minimum("Inner London")[1]
        outer = dl.minimum("Outer London")[1]
        uk = dl.minimum("UK")[1]
        assert inner < uk
        assert inner < outer

    def test_percentile_series_supported(self, study, feeds):
        p90 = performance_series(
            feeds, "dl_volume_mb", grouping="national",
            percentile=90.0, labeled=study.labeled_kpis,
        )
        assert p90.percentile == 90.0
        assert "UK" in p90.values


class TestFig9Voice:
    def test_voice_volume_spike_week12(self, study):
        voice = study.fig9()["voice_volume_mb"]
        week, value = voice.maximum("UK")
        assert week in (12, 13)
        assert 100.0 < value < 200.0

    def test_simultaneous_users_track_volume(self, study):
        fig9 = study.fig9()
        users_peak = fig9["voice_users"].maximum("UK")[1]
        assert users_peak > 80.0

    def test_dl_loss_spikes_then_recovers_below_normal(self, study):
        loss = study.fig9()["voice_dl_loss_rate"]
        peak_week, peak = loss.maximum("UK")
        assert peak > 100.0  # "increase of more than 100%"
        assert 10 <= peak_week <= 12
        assert loss.values["UK"][-1] < 0.0  # below normal at the end

    def test_ul_loss_decreases(self, study):
        ul_loss = study.fig9()["voice_ul_loss_rate"]
        lockdown = ul_loss.values["UK"][ul_loss.weeks >= 14]
        assert lockdown.mean() < 0.0


class TestFig10Clusters:
    def test_rural_dl_stable(self, study):
        dl = study.fig10()["dl_volume_mb"]
        rural_min = dl.minimum("Rural Residents")[1]
        assert rural_min > -15.0

    def test_cosmopolitan_users_drop_sharply(self, study):
        users = study.fig10()["connected_users"]
        cosmo = users.minimum("Cosmopolitans")[1]
        assert cosmo < -25.0

    def test_cosmopolitan_dl_drops_most(self, study):
        dl = study.fig10()["dl_volume_mb"]
        cosmo = dl.minimum("Cosmopolitans")[1]
        for cluster in dl.values:
            assert cosmo <= dl.minimum(cluster)[1] + 1e-9

    def test_correlations_signs(self, study):
        correlations = study.cluster_correlations()
        assert correlations["Cosmopolitans"] > 0.9
        assert correlations["Ethnicity Central"] > 0.6
        assert correlations["Suburbanites"] < -0.3


class TestFig11LondonDistricts:
    def test_ec_wc_collapse(self, study):
        dl = study.fig11()["dl_volume_mb"]
        assert dl.minimum("EC")[1] < -55.0
        assert dl.minimum("WC")[1] < -55.0

    def test_north_detaches(self, study):
        # Paper §5.1: N keeps stable DL volume while DL users rise.
        dl = study.fig11()["dl_volume_mb"]
        users = study.fig11()["dl_active_users"]
        assert dl.minimum("N")[1] > -25.0
        n_users = users.values["N"][
            (users.weeks >= 10) & (users.weeks <= 14)
        ]
        assert n_users.max() > 0.0

    def test_all_inner_london_areas_present(self, study):
        dl = study.fig11()["dl_volume_mb"]
        assert {"EC", "WC", "N", "E", "SE", "SW", "W", "NW"} <= set(
            dl.values
        )


class TestFig12LondonClusters:
    def test_only_london_clusters(self, study):
        fig12 = study.fig12()["dl_volume_mb"]
        assert set(fig12.values) - {"UK"} <= {
            "Cosmopolitans",
            "Ethnicity Central",
            "Multicultural Metropolitans",
        }

    def test_cosmopolitans_sharpest_in_london(self, study):
        fig12 = study.fig12()["dl_volume_mb"]
        cosmo = fig12.minimum("Cosmopolitans")[1]
        for cluster in fig12.values:
            assert cosmo <= fig12.minimum(cluster)[1] + 1e-9

    def test_multicultural_ul_increases(self, study):
        fig12 = study.fig12()["ul_volume_mb"]
        name = "Multicultural Metropolitans"
        if name in fig12.values:
            lockdown = fig12.values[name][fig12.weeks >= 13]
            assert lockdown.max() > 5.0


class TestApiValidation:
    def test_unknown_grouping(self, study, feeds):
        with pytest.raises(ValueError):
            performance_series(feeds, "dl_volume_mb", grouping="nope")

    def test_unknown_metric(self, study, feeds):
        with pytest.raises(KeyError):
            performance_series(
                feeds, "nope", labeled=study.labeled_kpis
            )

    def test_restrict_county_filters(self, study, feeds):
        series = performance_series(
            feeds, "dl_volume_mb", grouping="district_area",
            restrict_county="Inner London", labeled=study.labeled_kpis,
        )
        assert "M" not in series.values  # Manchester area excluded

    def test_label_kpis_standalone(self, feeds):
        labeled = label_kpis(feeds)
        assert len(labeled) == len(feeds.radio_kpis)


class TestRegionGroupingAndExport:
    def test_region_grouping(self, study, feeds):
        series = performance_series(
            feeds, "dl_volume_mb", grouping="region",
            labeled=study.labeled_kpis,
        )
        assert "London" in series.values
        assert "Scotland" in series.values
        # Every broad region drops under lockdown.
        for region, values in series.values.items():
            assert values[series.weeks >= 14].mean() < 5.0, region

    def test_to_frame_long_format(self, study):
        series = study.fig8()["dl_volume_mb"]
        frame = series.to_frame()
        assert frame.column_names == ("group", "week", "change_pct")
        expected_rows = sum(
            len(values) for values in series.values.values()
        )
        assert len(frame) == expected_rows

    def test_to_frame_round_trips_values(self, study):
        series = study.fig8()["dl_volume_mb"]
        frame = series.to_frame()
        uk = frame.filter(frame["group"] == "UK")
        assert uk["change_pct"].tolist() == series.values["UK"].tolist()
