"""Tests for home detection (§2.3) and census validation (Fig 2)."""

import numpy as np
import pytest

from repro.core import detect_homes, validate_against_census
from repro.core.statistics import top_tower_filter


class TestHomeDetection:
    def test_detection_rate_in_paper_band(self, study):
        # Paper: homes for ~16M of ~22M users (~73%).
        rate = study.homes.detection_rate
        assert 0.60 < rate < 0.90

    def test_detected_homes_match_true_home_sites(self, study, feeds):
        homes = study.homes
        detected = homes.detected
        agreement = (
            homes.home_site[detected]
            == feeds.agents.home_site[detected]
        ).mean()
        # Nighttime dwell is dominated by the true home tower; detection
        # should recover it almost always.
        assert agreement > 0.95

    def test_min_nights_threshold_monotone(self, feeds):
        loose = detect_homes(feeds, min_nights=5)
        strict = detect_homes(feeds, min_nights=20)
        assert loose.detected.sum() >= strict.detected.sum()

    def test_detected_users_meet_threshold(self, feeds):
        homes = detect_homes(feeds, min_nights=14)
        assert np.all(homes.nights_observed[homes.detected] >= 14)

    def test_custom_window(self, feeds):
        window = feeds.calendar.february_days[:10]
        homes = detect_homes(feeds, min_nights=5, window_days=window)
        assert np.all(homes.nights_observed <= 10)

    def test_empty_window_rejected(self, feeds):
        with pytest.raises(ValueError):
            detect_homes(feeds, window_days=np.array([], dtype=int))

    def test_window_out_of_range_rejected(self, feeds):
        with pytest.raises(ValueError):
            detect_homes(feeds, window_days=np.array([10_000]))

    def test_invalid_min_nights(self, feeds):
        with pytest.raises(ValueError):
            detect_homes(feeds, min_nights=0)


class TestCensusValidation:
    def test_r_squared_high(self, study):
        # Paper: r² = 0.955. The synthetic sample is smaller, so the
        # bar is looser — but the relationship must be strongly linear.
        validation = study.fig2()
        assert validation.r_squared > 0.75

    def test_slope_is_market_share_like(self, study, feeds):
        validation = study.fig2()
        users = validation.table["inferred_users"].sum()
        population = validation.table["census_population"].sum()
        assert validation.slope == pytest.approx(
            users / population, rel=0.5
        )
        assert validation.slope > 0

    def test_all_lads_present(self, study, feeds):
        validation = study.fig2()
        assert validation.num_lads == len(feeds.geography.lad_population)

    def test_inferred_total_matches_detected(self, study):
        validation = study.fig2()
        assert (
            validation.table["inferred_users"].sum()
            == study.homes.detected.sum()
        )

    def test_fails_without_detections(self, feeds):
        from repro.core.home import HomeDetectionResult

        empty = HomeDetectionResult(
            user_ids=feeds.mobility.user_ids,
            home_site=np.full(feeds.mobility.num_users, -1, dtype=np.int64),
            nights_observed=np.zeros(feeds.mobility.num_users, dtype=np.int64),
            min_nights=14,
        )
        with pytest.raises(ValueError):
            validate_against_census(feeds, empty)


class TestTopTowerFilter:
    def test_identity_when_under_limit(self):
        dwell = np.array([[3.0, 2.0, 1.0]])
        assert np.array_equal(top_tower_filter(dwell, 20), dwell)

    def test_keeps_largest(self):
        dwell = np.array([[5.0, 1.0, 4.0, 2.0]])
        out = top_tower_filter(dwell, 2)
        assert out.tolist() == [[5.0, 0.0, 4.0, 0.0]]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            top_tower_filter(np.array([[1.0]]), 0)

    def test_identity_branch_returns_a_copy(self):
        """Regression: with k <= top_towers the input array itself was
        returned, so mutating the result corrupted the caller's feed."""
        dwell = np.array([[3.0, 2.0, 1.0]])
        out = top_tower_filter(dwell, 20)
        assert out is not dwell
        assert not np.shares_memory(out, dwell)
        out[0, 0] = -1.0
        assert dwell[0, 0] == 3.0

    def test_filtering_branch_never_aliases(self):
        dwell = np.array([[5.0, 1.0, 4.0, 2.0]])
        out = top_tower_filter(dwell, 2)
        assert not np.shares_memory(out, dwell)
        out[0, 0] = -1.0
        assert dwell[0, 0] == 5.0
