"""Tests for the seed-sweep machinery (cheap: two tiny seeds)."""

import pytest

from repro.core.robustness import seed_sweep
from repro.simulation.config import SimulationConfig


@pytest.fixture(scope="module")
def sweep():
    return seed_sweep(
        [3, 5], config_factory=SimulationConfig.tiny
    )


class TestSeedSweep:
    def test_per_seed_summaries(self, sweep):
        assert sweep.seeds == (3, 5)
        assert len(sweep.per_seed) == 2

    def test_values_aligned(self, sweep):
        values = sweep.values("voice_volume_peak_pct")
        assert values.shape == (2,)

    def test_statistics(self, sweep):
        metric = "gyration_change_lockdown_pct"
        low, high = sweep.spread(metric)
        assert low <= sweep.mean(metric) <= high
        assert sweep.std(metric) >= 0

    def test_stable_signs_on_core_findings(self, sweep):
        assert sweep.stable_sign("gyration_change_lockdown_pct")
        assert sweep.stable_sign("voice_volume_peak_pct")

    def test_rows_cover_metrics(self, sweep):
        rows = sweep.to_rows()
        assert len(rows) == len(sweep.metrics())
        assert all("mean" in row for row in rows)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            seed_sweep([])
