"""Property-based tests for sessionization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import sessionize_events
from repro.frames import Frame


@st.composite
def event_feeds(draw):
    num_users = draw(st.integers(min_value=1, max_value=6))
    rows = []
    for user in range(num_users):
        num_events = draw(st.integers(min_value=1, max_value=8))
        times = sorted(
            draw(
                st.lists(
                    st.floats(min_value=0, max_value=86_399),
                    min_size=num_events,
                    max_size=num_events,
                )
            )
        )
        for time in times:
            site = draw(st.integers(min_value=0, max_value=4))
            rows.append(
                {"user_id": user, "site_id": site, "timestamp_s": time}
            )
    return Frame.from_rows(
        rows, columns=["user_id", "site_id", "timestamp_s"]
    )


class TestSessionizeProperties:
    @given(event_feeds())
    @settings(max_examples=80, deadline=None)
    def test_dwell_covers_first_event_to_day_end(self, events):
        out = sessionize_events(events)
        for user in np.unique(events["user_id"]):
            first = events["timestamp_s"][events["user_id"] == user].min()
            total = out["dwell_s"][out["user_id"] == user].sum()
            assert total == pytest.approx(86_400.0 - first, abs=1e-6)

    @given(event_feeds())
    @settings(max_examples=80, deadline=None)
    def test_dwell_non_negative(self, events):
        out = sessionize_events(events)
        assert np.all(out["dwell_s"] > 0)

    @given(event_feeds())
    @settings(max_examples=80, deadline=None)
    def test_sites_subset_of_observed(self, events):
        out = sessionize_events(events)
        observed = set(events["site_id"].tolist())
        assert set(out["site_id"].tolist()) <= observed

    @given(event_feeds())
    @settings(max_examples=60, deadline=None)
    def test_order_invariant(self, events):
        shuffled = events.take(
            np.random.default_rng(0).permutation(len(events))
        )
        first = sessionize_events(events).sort_by(["user_id", "site_id"])
        second = sessionize_events(shuffled).sort_by(
            ["user_id", "site_id"]
        )
        assert first["user_id"].tolist() == second["user_id"].tolist()
        assert np.allclose(first["dwell_s"], second["dwell_s"])

    @given(event_feeds())
    @settings(max_examples=60, deadline=None)
    def test_unique_user_site_rows(self, events):
        out = sessionize_events(events)
        keys = list(zip(out["user_id"].tolist(), out["site_id"].tolist()))
        assert len(keys) == len(set(keys))
