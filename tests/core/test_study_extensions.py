"""Tests for the study's extended convenience methods."""

import pytest


class TestVerdicts:
    def test_verdicts_available(self, study):
        verdicts = study.verdicts()
        assert len(verdicts) >= 20
        passed = sum(verdict.passed for verdict in verdicts)
        assert passed / len(verdicts) >= 0.85

    def test_verdict_objects(self, study):
        verdict = study.verdicts()[0]
        assert hasattr(verdict.target, "section")
        assert isinstance(verdict.passed, bool)


class TestRecoveryRanking:
    def test_ranking_covers_regions(self, study):
        ranked = study.recovery_ranking()
        groups = {fit.group for fit in ranked}
        assert "Inner London" in groups
        assert "West Midlands" in groups

    def test_london_above_midlands(self, study):
        ranked = study.recovery_ranking()
        position = {fit.group: i for i, fit in enumerate(ranked)}
        assert position["Inner London"] < position["West Midlands"]


class TestWeeklyRhythmMethod:
    def test_rhythm_weeks(self, study):
        rhythm = study.weekly_rhythm()
        assert rhythm.weeks[0] == 9
        assert rhythm.gap_at(9) > 0

    def test_entropy_rhythm_also_available(self, study):
        rhythm = study.weekly_rhythm("entropy")
        assert rhythm.gap.shape == rhythm.weeks.shape


class TestSummaryGrowthKeys:
    def test_growth_framings_present(self, study):
        summary = study.summary()
        assert "data_years_rewound" in summary
        assert "voice_years_of_growth" in summary
        assert summary["voice_years_of_growth"] == pytest.approx(
            7.0, abs=2.0
        )
