"""Streaming sessionization vs the one-shot path, bitwise.

:func:`sessionize_segments_stream` / :func:`sessionize_events_stream`
process user-partitioned event chunks one at a time and merge with a
stable ``user_id`` sort.  Because sessionization is strictly per-user,
the merged output must be *bitwise* identical to sessionizing the
concatenated feed — for any partition of the users, in any chunk
order, including empty chunks.  Hypothesis drives random feeds and
random partitions through that promise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    sessionize_events,
    sessionize_events_stream,
    sessionize_segments,
    sessionize_segments_stream,
)
from repro.frames import Frame


def _empty_events() -> Frame:
    return Frame(
        {
            "user_id": np.empty(0, dtype=np.int64),
            "site_id": np.empty(0, dtype=np.int64),
            "timestamp_s": np.empty(0, dtype=np.float64),
        }
    )


@st.composite
def partitioned_feeds(draw):
    """A random event feed plus a random user-partition into chunks."""
    num_users = draw(st.integers(min_value=0, max_value=8))
    num_chunks = draw(st.integers(min_value=1, max_value=4))
    assignment = [
        draw(st.integers(min_value=0, max_value=num_chunks - 1))
        for _ in range(num_users)
    ]
    rows_per_chunk: list[list[dict]] = [[] for _ in range(num_chunks)]
    all_rows: list[dict] = []
    for user, chunk in enumerate(assignment):
        num_events = draw(st.integers(min_value=0, max_value=6))
        for _ in range(num_events):
            row = {
                "user_id": user,
                "site_id": draw(st.integers(min_value=0, max_value=4)),
                "timestamp_s": draw(
                    st.floats(min_value=0, max_value=86_399)
                ),
            }
            rows_per_chunk[chunk].append(row)
            all_rows.append(row)
    columns = ["user_id", "site_id", "timestamp_s"]

    def build(rows):
        if not rows:
            return _empty_events()
        return Frame.from_rows(rows, columns=columns)

    return build(all_rows), [build(rows) for rows in rows_per_chunk]


def assert_frames_bitwise(expected: Frame, actual: Frame) -> None:
    assert expected.column_names == actual.column_names
    for column in expected.column_names:
        left, right = expected[column], actual[column]
        assert left.dtype == right.dtype, f"{column}: dtype differs"
        assert np.array_equal(left, right), f"{column}: not bitwise equal"


class TestStreamMatchesOneShot:
    @given(partitioned_feeds())
    @settings(max_examples=60, deadline=None)
    def test_segments_bitwise(self, case):
        whole, chunks = case
        assert_frames_bitwise(
            sessionize_segments(whole),
            sessionize_segments_stream(chunks),
        )

    @given(partitioned_feeds())
    @settings(max_examples=60, deadline=None)
    def test_events_bitwise(self, case):
        whole, chunks = case
        assert_frames_bitwise(
            sessionize_events(whole),
            sessionize_events_stream(chunks),
        )

    @given(partitioned_feeds(), st.floats(min_value=1, max_value=200_000))
    @settings(max_examples=30, deadline=None)
    def test_day_end_threads_through(self, case, day_end):
        whole, chunks = case
        assert_frames_bitwise(
            sessionize_events(whole, day_end_s=day_end),
            sessionize_events_stream(chunks, day_end_s=day_end),
        )


class TestStreamEdges:
    def test_no_chunks(self):
        assert len(sessionize_segments_stream([])) == 0
        out = sessionize_events_stream([])
        assert len(out) == 0
        assert tuple(out.column_names) == ("user_id", "site_id", "dwell_s")

    def test_all_chunks_empty(self):
        chunks = [_empty_events(), _empty_events()]
        assert len(sessionize_segments_stream(chunks)) == 0
        assert len(sessionize_events_stream(chunks)) == 0

    def test_single_chunk_passthrough(self):
        events = Frame(
            {
                "user_id": np.array([3, 3, 7], dtype=np.int64),
                "site_id": np.array([1, 2, 0], dtype=np.int64),
                "timestamp_s": np.array([10.0, 400.0, 5.0]),
            }
        )
        assert_frames_bitwise(
            sessionize_segments(events),
            sessionize_segments_stream([events]),
        )

    def test_generator_input_is_consumed_lazily(self):
        # The stream functions accept any iterable, not just lists.
        events = Frame(
            {
                "user_id": np.array([1], dtype=np.int64),
                "site_id": np.array([0], dtype=np.int64),
                "timestamp_s": np.array([100.0]),
            }
        )
        out = sessionize_events_stream(chunk for chunk in [events])
        assert len(out) == 1
        assert out["dwell_s"][0] == pytest.approx(86_300.0)
