"""Tests for the years-of-growth contextualization."""

import pytest

from repro.core.annual_context import (
    DATA_ANNUAL_GROWTH,
    VOICE_ANNUAL_GROWTH,
    contextualize_summary,
    years_of_growth,
)


class TestYearsOfGrowth:
    def test_paper_voice_framing(self):
        # +140% at ~13.3%/yr ≈ 7 years (§4.2).
        assert years_of_growth(140.0, VOICE_ANNUAL_GROWTH) == pytest.approx(
            7.0, abs=0.1
        )

    def test_paper_data_framing(self):
        # −24% at ~32%/yr ≈ one year rewound (§4.1).
        assert years_of_growth(-24.0, DATA_ANNUAL_GROWTH) == pytest.approx(
            -1.0, abs=0.05
        )

    def test_zero_change_zero_years(self):
        assert years_of_growth(0.0, 0.3) == 0.0

    def test_invalid_growth(self):
        with pytest.raises(ValueError):
            years_of_growth(10.0, 0.0)

    def test_total_loss_rejected(self):
        with pytest.raises(ValueError):
            years_of_growth(-100.0, 0.3)

    def test_monotone(self):
        assert years_of_growth(50.0, 0.2) < years_of_growth(100.0, 0.2)


class TestContextualizeSummary:
    def test_derives_both_framings(self, study):
        context = contextualize_summary(study.summary())
        # The measured run reproduces both stories.
        assert 0.5 < context["data_years_rewound"] < 2.0
        assert 5.0 < context["voice_years_of_growth"] < 9.5

    def test_empty_summary(self):
        assert contextualize_summary({}) == {}
