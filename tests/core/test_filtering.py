"""Tests for the §2.3 study-population filter on raw events."""

import numpy as np
import pytest

from repro.core.filtering import filter_study_events
from repro.frames import Frame
from repro.network.devices import DeviceCatalog


@pytest.fixture(scope="module")
def catalog():
    return DeviceCatalog.generate(seed=1)


def make_events(catalog):
    smartphone = int(catalog.smartphone_tacs[0])
    m2m = int(catalog.m2m_tacs[0])
    return Frame(
        {
            "user_id": np.array([0, 0, 1, 2, 3], dtype=np.int64),
            "tac": np.array(
                [smartphone, smartphone, m2m, smartphone, smartphone],
                dtype=np.int64,
            ),
            "mcc": np.array([234, 234, 234, 208, 234], dtype=np.int64),
            "mnc": np.array([10, 10, 10, 1, 15], dtype=np.int64),
            "event": np.zeros(5, dtype=np.int64),
        }
    )


class TestFilter:
    def test_keeps_native_smartphones(self, catalog):
        kept, report = filter_study_events(make_events(catalog), catalog)
        assert kept["user_id"].tolist() == [0, 0]
        assert report.kept_events == 2

    def test_drops_m2m(self, catalog):
        __, report = filter_study_events(make_events(catalog), catalog)
        assert report.dropped_m2m == 1

    def test_drops_roamers_and_foreign_mnc(self, catalog):
        # user 2 has a foreign MCC; user 3 is on the right MCC but a
        # different operator's MNC — both are non-native.
        __, report = filter_study_events(make_events(catalog), catalog)
        assert report.dropped_roamers == 2

    def test_user_accounting(self, catalog):
        __, report = filter_study_events(make_events(catalog), catalog)
        assert report.kept_users == 1
        assert report.dropped_users == 3
        assert report.total_events == 5

    def test_missing_columns_rejected(self, catalog):
        with pytest.raises(KeyError):
            filter_study_events(Frame({"user_id": [1]}), catalog)

    def test_end_to_end_with_generator(self, catalog):
        """The filter applied to an enriched generator feed keeps the
        same users the subscriber base marks as study population."""
        from repro.geo import build_uk_geography
        from repro.network import build_subscriber_base, build_topology
        from repro.network.signaling import (
            DwellSegments,
            SignalingGenerator,
            attach_subscriber_context,
        )

        geography = build_uk_geography(seed=2)
        topology = build_topology(geography, target_site_count=150, seed=2)
        base = build_subscriber_base(
            geography, topology, catalog, num_users=400, seed=2
        )
        segments = DwellSegments(
            user_ids=base.user_ids,
            site_ids=base.home_site,
            start_s=np.zeros(base.num_subscribers),
            duration_s=np.full(base.num_subscribers, 86_400.0),
        )
        rng = np.random.default_rng(3)
        feed = SignalingGenerator().generate_day(segments, rng)
        enriched = attach_subscriber_context(
            feed, base.tacs, base.mccs, base.mncs, rng
        )
        kept, report = filter_study_events(enriched, catalog)
        kept_users = set(np.unique(kept["user_id"]).tolist())
        expected = set(base.study_user_ids().tolist())
        assert kept_users == expected
        assert report.dropped_users == base.num_subscribers - len(expected)
