"""Unit and property tests for the mobility metrics (eqs. 1 and 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import mobility_entropy, radius_of_gyration


class TestEntropy:
    def test_single_tower_zero_entropy(self):
        entropy = mobility_entropy(
            np.array([[86400.0, 0.0]]), np.array([[1, 2]])
        )
        assert entropy[0] == pytest.approx(0.0)

    def test_two_equal_towers_ln2(self):
        entropy = mobility_entropy(
            np.array([[43200.0, 43200.0]]), np.array([[1, 2]])
        )
        assert entropy[0] == pytest.approx(np.log(2))

    def test_uniform_k_towers_ln_k(self):
        k = 6
        dwell = np.full((1, k), 86400.0 / k)
        sites = np.arange(k)[None, :]
        entropy = mobility_entropy(dwell, sites)
        assert entropy[0] == pytest.approx(np.log(k))

    def test_duplicate_towers_merged(self):
        # Two anchor slots on the same physical tower must count as one
        # visited location: 50/25/25 over two towers = ln-weighted of
        # (0.5, 0.5), not of (0.5, 0.25, 0.25).
        dwell = np.array([[43200.0, 21600.0, 21600.0]])
        sites = np.array([[7, 9, 9]])
        merged = mobility_entropy(dwell, sites)
        assert merged[0] == pytest.approx(np.log(2))

    def test_zero_dwell_row(self):
        entropy = mobility_entropy(
            np.array([[0.0, 0.0]]), np.array([[1, 2]])
        )
        assert entropy[0] == 0.0

    def test_multiple_rows_independent(self):
        dwell = np.array([[86400.0, 0.0], [43200.0, 43200.0]])
        sites = np.array([[1, 2], [1, 2]])
        entropy = mobility_entropy(dwell, sites)
        assert entropy[0] == pytest.approx(0.0)
        assert entropy[1] == pytest.approx(np.log(2))

    def test_negative_dwell_rejected(self):
        with pytest.raises(ValueError):
            mobility_entropy(np.array([[-1.0, 2.0]]), np.array([[1, 2]]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mobility_entropy(np.array([[1.0, 2.0]]), np.array([[1]]))

    def test_empty_input(self):
        out = mobility_entropy(
            np.empty((0, 3)), np.empty((0, 3), dtype=int)
        )
        assert out.shape == (0,)

    @given(
        hnp.arrays(
            np.float64,
            (5, 8),
            elements=st.floats(min_value=0, max_value=86400),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_entropy_bounds(self, dwell):
        sites = np.tile(np.arange(8), (5, 1))
        entropy = mobility_entropy(dwell, sites)
        assert np.all(entropy >= -1e-9)
        assert np.all(entropy <= np.log(8) + 1e-9)

    @given(
        hnp.arrays(
            np.float64,
            (4, 6),
            elements=st.floats(min_value=0.1, max_value=86400),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_entropy_scale_invariant(self, dwell):
        # Entropy depends only on the dwell *fractions*.
        sites = np.tile(np.arange(6), (4, 1))
        once = mobility_entropy(dwell, sites)
        scaled = mobility_entropy(dwell * 3.7, sites)
        assert np.allclose(once, scaled)

    @given(st.integers(min_value=0, max_value=719))
    @settings(max_examples=40, deadline=None)
    def test_permutation_invariant(self, seed):
        rng = np.random.default_rng(seed)
        dwell = rng.random((1, 8)) * 3600
        sites = np.arange(8)[None, :]
        perm = rng.permutation(8)
        assert mobility_entropy(dwell, sites)[0] == pytest.approx(
            mobility_entropy(dwell[:, perm], sites[:, perm])[0]
        )


class TestGyration:
    def make_row(self, dwell, lats, lons):
        return (
            np.asarray([dwell], dtype=float),
            np.asarray([lats], dtype=float),
            np.asarray([lons], dtype=float),
        )

    def test_single_location_zero(self):
        dwell, lats, lons = self.make_row(
            [86400.0, 0.0], [51.5, 52.0], [0.0, 0.0]
        )
        assert radius_of_gyration(dwell, lats, lons)[0] == pytest.approx(0.0)

    def test_two_equal_locations(self):
        # Two towers ~111 km apart, equal dwell: gyration = half-distance.
        dwell, lats, lons = self.make_row(
            [43200.0, 43200.0], [51.0, 52.0], [0.0, 0.0]
        )
        gyration = radius_of_gyration(dwell, lats, lons)[0]
        assert gyration == pytest.approx(55.6, rel=0.02)

    def test_weights_pull_centroid(self):
        # 90% of time at one tower: gyration well below half-distance.
        dwell, lats, lons = self.make_row(
            [77760.0, 8640.0], [51.0, 52.0], [0.0, 0.0]
        )
        gyration = radius_of_gyration(dwell, lats, lons)[0]
        assert gyration < 40.0
        assert gyration > 0.0

    def test_zero_dwell_row(self):
        dwell, lats, lons = self.make_row([0.0, 0.0], [51.0, 52.0], [0, 0])
        assert radius_of_gyration(dwell, lats, lons)[0] == 0.0

    def test_duplicate_towers_equivalent_to_merged(self):
        # Gyration is invariant to splitting a tower's dwell over slots.
        split = radius_of_gyration(
            np.array([[43200.0, 21600.0, 21600.0]]),
            np.array([[51.0, 52.0, 52.0]]),
            np.array([[0.0, 0.0, 0.0]]),
        )
        merged = radius_of_gyration(
            np.array([[43200.0, 43200.0]]),
            np.array([[51.0, 52.0]]),
            np.array([[0.0, 0.0]]),
        )
        assert split[0] == pytest.approx(merged[0], rel=1e-9)

    def test_paper_mode_differs_from_weighted(self):
        dwell = np.array([[43200.0, 28800.0, 14400.0]])
        lats = np.array([[51.0, 51.5, 52.0]])
        lons = np.array([[0.0, 0.3, -0.2]])
        weighted = radius_of_gyration(dwell, lats, lons, mode="weighted")
        paper = radius_of_gyration(dwell, lats, lons, mode="paper")
        assert weighted[0] != pytest.approx(paper[0])

    def test_unknown_mode_rejected(self):
        dwell, lats, lons = self.make_row([1.0], [51.0], [0.0])
        with pytest.raises(ValueError, match="mode"):
            radius_of_gyration(dwell, lats, lons, mode="nope")

    def test_negative_dwell_rejected(self):
        dwell, lats, lons = self.make_row([-1.0], [51.0], [0.0])
        with pytest.raises(ValueError):
            radius_of_gyration(dwell, lats, lons)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_gyration_non_negative_and_bounded(self, seed):
        rng = np.random.default_rng(seed)
        dwell = rng.random((3, 6)) * 14400
        lats = 50.0 + rng.random((3, 6)) * 5.0
        lons = -4.0 + rng.random((3, 6)) * 5.0
        gyration = radius_of_gyration(dwell, lats, lons)
        assert np.all(gyration >= 0)
        # Bounded by the largest pairwise distance in the row (~span).
        assert np.all(gyration < 1000.0)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_gyration_scale_invariant_in_time(self, seed):
        rng = np.random.default_rng(seed)
        dwell = rng.random((2, 5)) * 3600 + 1.0
        lats = 50.0 + rng.random((2, 5))
        lons = rng.random((2, 5))
        once = radius_of_gyration(dwell, lats, lons)
        scaled = radius_of_gyration(dwell * 2.5, lats, lons)
        assert np.allclose(once, scaled)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_translation_invariant(self, seed):
        rng = np.random.default_rng(seed)
        dwell = rng.random((2, 5)) * 3600 + 1.0
        lats = 51.0 + rng.random((2, 5)) * 0.5
        lons = rng.random((2, 5)) * 0.5
        base = radius_of_gyration(dwell, lats, lons)
        shifted = radius_of_gyration(dwell, lats + 0.7, lons)
        assert np.allclose(base, shifted, rtol=0.02)
