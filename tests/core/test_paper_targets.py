"""Tests for the machine-readable paper targets."""

import pytest

from repro.core.paper_targets import (
    PAPER_TARGETS,
    evaluate_summary,
    render_verdicts,
)


class TestTargetCatalog:
    def test_bands_are_ordered(self):
        for target in PAPER_TARGETS:
            assert target.low < target.high, target.key

    def test_keys_unique(self):
        keys = [target.key for target in PAPER_TARGETS]
        assert len(keys) == len(set(keys))

    def test_every_section_referenced(self):
        sections = {target.section.split(" ")[0] for target in PAPER_TARGETS}
        assert {"§2.3", "§2.4", "§3.1", "§3.4", "§4.1", "§4.2",
                "§4.4", "§5.1"} <= sections


class TestEvaluation:
    def test_study_passes_most_targets(self, study):
        verdicts = evaluate_summary(study.summary())
        assert len(verdicts) >= 20
        passed = sum(verdict.passed for verdict in verdicts)
        # The reproduction bar: at least 85% of targets inside band.
        assert passed / len(verdicts) >= 0.85

    def test_skips_missing_keys(self):
        verdicts = evaluate_summary({"rat_share_4g": 0.75})
        assert len(verdicts) == 1
        assert verdicts[0].passed

    def test_fails_out_of_band(self):
        verdicts = evaluate_summary({"rat_share_4g": 0.5})
        assert not verdicts[0].passed

    def test_render(self, study):
        verdicts = evaluate_summary(study.summary())
        text = render_verdicts(verdicts)
        assert "targets inside the band" in text
        assert "§4.2" in text
