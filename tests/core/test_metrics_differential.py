"""Differential tests: vectorized mobility kernels vs per-row Python.

:func:`mobility_entropy` and :func:`radius_of_gyration` are the inner
kernels of the batched analysis path; both are segment-sum / bincount
vectorizations of a formula that is trivial to state row by row.
These property tests (hypothesis) re-derive every row with a naive
pure-Python reference — dicts for the tower merge, ``math`` for the
arithmetic — and require the kernels to agree to float round-off on
generated edge rows: zero-dwell users, single-tower users, duplicate
anchors pointing at one physical tower.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import mobility_entropy, radius_of_gyration

# Dwell seconds: heavily weighted toward the edge cases (exact zeros,
# whole days) but covering arbitrary magnitudes.
dwell_values = st.one_of(
    st.just(0.0),
    st.just(86_400.0),
    st.floats(min_value=0.0, max_value=86_400.0,
              allow_nan=False, allow_infinity=False),
)
# A small tower-id pool forces duplicate anchors within a row.
tower_ids = st.integers(min_value=0, max_value=4)
coords = st.floats(min_value=-3.0, max_value=3.0,
                   allow_nan=False, allow_infinity=False)


@st.composite
def dwell_rows(draw, with_coords=False):
    rows = draw(st.integers(min_value=1, max_value=8))
    k = draw(st.integers(min_value=1, max_value=6))
    shape = (rows, k)
    dwell = np.array(
        draw(st.lists(st.lists(dwell_values, min_size=k, max_size=k),
                      min_size=rows, max_size=rows))
    )
    sites = np.array(
        draw(st.lists(st.lists(tower_ids, min_size=k, max_size=k),
                      min_size=rows, max_size=rows))
    )
    if not with_coords:
        return dwell, sites
    lats = np.array(
        draw(st.lists(st.lists(coords, min_size=k, max_size=k),
                      min_size=rows, max_size=rows))
    )
    lons = np.array(
        draw(st.lists(st.lists(coords, min_size=k, max_size=k),
                      min_size=rows, max_size=rows))
    )
    assert dwell.shape == sites.shape == lats.shape == lons.shape == shape
    return dwell, lats, lons


def entropy_row_reference(dwell, sites):
    """Eq. 1 for one user-day, the obvious way: merge by tower id."""
    per_tower = {}
    for seconds, site in zip(dwell, sites):
        per_tower[site] = per_tower.get(site, 0.0) + seconds
    total = sum(per_tower.values())
    if total <= 0:
        return 0.0
    entropy = 0.0
    for seconds in per_tower.values():
        p = seconds / total
        if p > 0:
            entropy -= p * math.log(p)
    return entropy


def gyration_row_reference(dwell, lats, lons, mode):
    """Eq. 2 for one user-day, scalar arithmetic throughout."""
    total = sum(dwell)
    if total <= 0:
        return 0.0
    km_per_deg_lat = 111.32
    km_per_deg_lon = km_per_deg_lat * math.cos(math.radians(lats[0]))
    x = [(lon - lons[0]) * km_per_deg_lon for lon in lons]
    y = [(lat - lats[0]) * km_per_deg_lat for lat in lats]
    if mode == "weighted":
        w = [seconds / total for seconds in dwell]
        cx = sum(wi * xi for wi, xi in zip(w, x))
        cy = sum(wi * yi for wi, yi in zip(w, y))
        sq = sum(
            wi * ((xi - cx) ** 2 + (yi - cy) ** 2)
            for wi, xi, yi in zip(w, x, y)
        )
        return math.sqrt(sq)
    t = [seconds / 86_400.0 for seconds in dwell]
    count = max(sum(1 for seconds in dwell if seconds > 0), 1)
    cx = sum(ti * xi for ti, xi in zip(t, x)) / count
    cy = sum(ti * yi for ti, yi in zip(t, y)) / count
    sq = sum(
        (ti * xi - cx) ** 2 + (ti * yi - cy) ** 2
        for ti, xi, yi, seconds in zip(t, x, y, dwell)
        if seconds > 0
    ) / count
    return math.sqrt(sq)


class TestEntropyDifferential:
    @given(dwell_rows())
    @settings(max_examples=120, deadline=None)
    def test_matches_per_row_reference(self, data):
        dwell, sites = data
        vectorized = mobility_entropy(dwell, sites)
        for row in range(dwell.shape[0]):
            expected = entropy_row_reference(dwell[row], sites[row])
            assert math.isclose(
                vectorized[row], expected, rel_tol=1e-9, abs_tol=1e-12
            )

    def test_zero_dwell_row_is_zero(self):
        dwell = np.zeros((3, 4))
        sites = np.arange(12).reshape(3, 4)
        assert np.array_equal(mobility_entropy(dwell, sites), np.zeros(3))

    def test_single_tower_row_is_zero(self):
        # All dwell on one physical tower — degenerate distribution.
        dwell = np.array([[3600.0, 0.0, 0.0]])
        sites = np.array([[7, 8, 9]])
        assert mobility_entropy(dwell, sites)[0] == 0.0

    def test_duplicate_anchors_merge_into_one_tower(self):
        # Two anchors on tower 5 must count as a single p(j): the
        # merged row is uniform over two towers -> log(2).
        split = np.array([[1800.0, 1800.0, 3600.0]])
        split_sites = np.array([[5, 5, 6]])
        merged = np.array([[3600.0, 3600.0]])
        merged_sites = np.array([[5, 6]])
        assert math.isclose(
            mobility_entropy(split, split_sites)[0],
            math.log(2.0), rel_tol=1e-12,
        )
        assert math.isclose(
            mobility_entropy(split, split_sites)[0],
            mobility_entropy(merged, merged_sites)[0], rel_tol=1e-12,
        )


class TestGyrationDifferential:
    @given(dwell_rows(with_coords=True))
    @settings(max_examples=120, deadline=None)
    def test_weighted_matches_per_row_reference(self, data):
        dwell, lats, lons = data
        vectorized = radius_of_gyration(dwell, lats, lons, mode="weighted")
        for row in range(dwell.shape[0]):
            expected = gyration_row_reference(
                dwell[row], lats[row], lons[row], "weighted"
            )
            assert math.isclose(
                vectorized[row], expected, rel_tol=1e-9, abs_tol=1e-9
            )

    @given(dwell_rows(with_coords=True))
    @settings(max_examples=120, deadline=None)
    def test_paper_mode_matches_per_row_reference(self, data):
        dwell, lats, lons = data
        vectorized = radius_of_gyration(dwell, lats, lons, mode="paper")
        for row in range(dwell.shape[0]):
            expected = gyration_row_reference(
                dwell[row], lats[row], lons[row], "paper"
            )
            assert math.isclose(
                vectorized[row], expected, rel_tol=1e-9, abs_tol=1e-9
            )

    def test_zero_dwell_row_is_zero(self):
        dwell = np.zeros((2, 3))
        coords_matrix = np.ones((2, 3))
        for mode in ("weighted", "paper"):
            out = radius_of_gyration(
                dwell, coords_matrix, coords_matrix, mode=mode
            )
            assert np.array_equal(out, np.zeros(2))

    def test_single_tower_row_is_zero(self):
        dwell = np.array([[86_400.0, 0.0]])
        lats = np.array([[51.5, 53.0]])
        lons = np.array([[-0.1, -2.2]])
        assert radius_of_gyration(dwell, lats, lons)[0] == 0.0
