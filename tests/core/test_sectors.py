"""Tests for the per-sector feed and its analysis."""

import numpy as np
import pytest

from repro.core.sectors import sector_imbalance, site_sector_totals
from repro.frames import group_by
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator


@pytest.fixture(scope="module")
def sector_feeds():
    config = SimulationConfig(
        num_users=600, target_site_count=80, seed=71,
        keep_sector_kpis=True,
    )
    return Simulator(config).run()


class TestSectorFeed:
    def test_sectors_partition_sites(self, sector_feeds):
        sectors = sector_feeds.sector_kpis
        assert set(np.unique(sectors["sector"]).tolist()) <= {0, 1, 2}
        assert set(np.unique(sectors["site_id"]).tolist()) <= set(
            range(sector_feeds.topology.num_sites)
        )

    def test_sector_presence_sums_to_population(self, sector_feeds):
        sectors = sector_feeds.sector_kpis
        day0 = sectors.filter(sectors["day"] == 0)
        total = day0["connected_users"].sum()
        # Average attached devices across the day ≈ study population
        # (minus outage losses).
        assert total == pytest.approx(
            sector_feeds.agents.num_users, rel=0.02
        )

    def test_sector_assignment_stable_across_days(self, sector_feeds):
        sectors = sector_feeds.sector_kpis
        # The same (site, sector) pairs appear day after day: users
        # don't hop sectors.
        day_a = sectors.filter(sectors["day"] == 2)
        day_b = sectors.filter(sectors["day"] == 3)
        pairs_a = set(zip(day_a["site_id"].tolist(), day_a["sector"].tolist()))
        pairs_b = set(zip(day_b["site_id"].tolist(), day_b["sector"].tolist()))
        overlap = len(pairs_a & pairs_b) / max(len(pairs_a), 1)
        assert overlap > 0.9

    def test_disabled_by_default(self, feeds):
        assert feeds.sector_kpis is None


class TestSectorAnalysis:
    def test_totals_shape(self, sector_feeds):
        totals = site_sector_totals(
            sector_feeds.sector_kpis, "dl_volume_mb"
        )
        assert {"site_id", "sector", "total"} <= set(totals.column_names)

    def test_unknown_metric(self, sector_feeds):
        with pytest.raises(KeyError):
            site_sector_totals(sector_feeds.sector_kpis, "nope")

    def test_imbalance_bounds(self, sector_feeds):
        imbalance = sector_imbalance(sector_feeds.sector_kpis)
        assert (
            imbalance.balanced_reference
            <= imbalance.mean_top_share
            <= 1.0
        )
        assert imbalance.p90_top_share >= imbalance.mean_top_share
        assert imbalance.num_sites > 0

    def test_sectors_sum_to_cell_volume(self, sector_feeds):
        # Sector DL summed over sectors and days ≈ daily cell DL
        # (sector feed is daily totals; cell feed stores daily medians
        # of hourly values, so compare at national aggregate level
        # against the known relationship: totals differ, shares agree).
        sectors = sector_feeds.sector_kpis
        per_site = group_by(sectors, ["site_id"]).agg(
            dl=("dl_volume_mb", "sum")
        )
        national_sector_dl = per_site["dl"].sum()
        assert national_sector_dl > 0
