"""Tests for the mobility-graph and significance extensions."""

import datetime as dt

import networkx as nx
import pytest

from repro.core.mobility_graph import build_mobility_graph, graph_summary
from repro.core.significance import (
    shift_table,
    distribution_shift_test,
)


@pytest.fixture(scope="module")
def graphs(feeds):
    calendar = feeds.calendar
    before = build_mobility_graph(
        feeds, calendar.day_of(dt.date(2020, 2, 25))
    )
    during = build_mobility_graph(
        feeds, calendar.day_of(dt.date(2020, 3, 31))
    )
    return before, during


class TestMobilityGraph:
    def test_graph_structure(self, graphs, feeds):
        before, __ = graphs
        assert isinstance(before, nx.Graph)
        assert before.number_of_nodes() <= feeds.topology.num_sites
        assert before.number_of_edges() > 0

    def test_node_attributes(self, graphs):
        before, __ = graphs
        node = next(iter(before.nodes))
        data = before.nodes[node]
        assert "postcode" in data and "county" in data

    def test_edges_have_length(self, graphs):
        before, __ = graphs
        for *__edge, data in list(before.edges(data=True))[:20]:
            assert data["length_km"] >= 0
            assert data["weight"] >= 1

    def test_lockdown_shreds_the_graph(self, graphs):
        before, during = graphs
        summary_before = graph_summary(before, 0)
        summary_during = graph_summary(during, 1)
        # Fewer co-visits overall and shorter remaining edges.
        assert (
            summary_during.total_trip_weight
            < summary_before.total_trip_weight * 0.8
        )
        assert (
            summary_during.mean_edge_length_km
            < summary_before.mean_edge_length_km
        )

    def test_summary_fields(self, graphs):
        before, __ = graphs
        summary = graph_summary(before, 7)
        assert summary.day == 7
        assert summary.num_nodes > 0
        assert 0 < summary.largest_component_share <= 1
        assert summary.mean_degree > 0

    def test_empty_graph_summary(self):
        summary = graph_summary(nx.Graph(), 0)
        assert summary.num_nodes == 0
        assert summary.total_trip_weight == 0.0

    def test_threshold_reduces_graph(self, feeds):
        day = feeds.calendar.day_of(dt.date(2020, 2, 25))
        loose = build_mobility_graph(feeds, day, presence_threshold_s=300)
        strict = build_mobility_graph(
            feeds, day, presence_threshold_s=7200
        )
        assert strict.number_of_edges() <= loose.number_of_edges()


class TestSignificance:
    def test_dl_drop_is_significant(self, study):
        result = distribution_shift_test(
            study.labeled_kpis, "dl_volume_mb"
        )
        assert result.direction == "down"
        assert result.significant
        assert result.lockdown_median < result.baseline_median

    def test_voice_surge_is_significant(self, study):
        result = distribution_shift_test(
            study.labeled_kpis, "voice_volume_mb"
        )
        assert result.direction == "up"
        assert result.significant

    def test_sliced_test(self, study):
        result = distribution_shift_test(
            study.labeled_kpis, "dl_volume_mb",
            group_column="area", group_value="EC",
        )
        assert result.group == "EC"
        assert result.direction == "down"

    def test_group_value_required(self, study):
        with pytest.raises(ValueError):
            distribution_shift_test(
                study.labeled_kpis, "dl_volume_mb", group_column="area"
            )

    def test_unknown_metric(self, study):
        with pytest.raises(KeyError):
            distribution_shift_test(study.labeled_kpis, "nope")

    def test_shift_table(self, study):
        table = shift_table(
            study.labeled_kpis,
            ("dl_volume_mb", "voice_volume_mb", "radio_load_pct"),
        )
        assert len(table) == 3
        directions = {row.metric: row.direction for row in table}
        assert directions["dl_volume_mb"] == "down"
        assert directions["voice_volume_mb"] == "up"
        assert directions["radio_load_pct"] == "down"

    def test_tiny_sample_rejected(self, study):
        labeled = study.labeled_kpis
        small = labeled.head(10)
        with pytest.raises(ValueError):
            distribution_shift_test(small, "dl_volume_mb")
