"""Tests for the mobility figures: 3, 4, 5, 6 and the §3 takeaways."""

import numpy as np
import pytest

from repro.simulation.clock import BASELINE_WEEK


def weekly(series, weeks_of_day, week):
    return series.at_week("UK", week, weeks_of_day=weeks_of_day)


@pytest.fixture(scope="module")
def weeks_of_day(calendar):
    days = np.flatnonzero(calendar.weeks >= BASELINE_WEEK)
    return calendar.weeks[days]


class TestFig3National:
    def test_baseline_week_near_zero(self, study, weeks_of_day):
        fig3 = study.fig3()
        for metric in ("gyration", "entropy"):
            assert weekly(fig3[metric], weeks_of_day, 9) == pytest.approx(
                0.0, abs=3.0
            )

    def test_gyration_drops_about_half_in_lockdown(self, study, weeks_of_day):
        gyration = study.fig3()["gyration"]
        lockdown = weekly(gyration, weeks_of_day, 14)
        assert -60.0 < lockdown < -35.0

    def test_week12_pre_lockdown_decrease(self, study, weeks_of_day):
        # Paper: −20% gyration already in week 12 (voluntary distancing).
        gyration = study.fig3()["gyration"]
        week12 = weekly(gyration, weeks_of_day, 12)
        assert -40.0 < week12 < -8.0

    def test_entropy_drop_smaller_than_gyration(self, study, weeks_of_day):
        fig3 = study.fig3()
        gyration = weekly(fig3["gyration"], weeks_of_day, 14)
        entropy = weekly(fig3["entropy"], weeks_of_day, 14)
        assert entropy > gyration  # less negative

    def test_mobility_recovers_slightly_after_week_15(self, study, weeks_of_day):
        gyration = study.fig3()["gyration"]
        trough = min(
            weekly(gyration, weeks_of_day, 13),
            weekly(gyration, weeks_of_day, 14),
        )
        late = weekly(gyration, weeks_of_day, 19)
        assert late > trough

    def test_series_is_daily(self, study):
        fig3 = study.fig3()
        assert fig3["gyration"].granularity == "daily"
        assert len(fig3["gyration"].x) == len(
            fig3["gyration"].values["UK"]
        )


class TestFig4Correlation:
    def test_no_correlation_before_declaration(self, study):
        fig4 = study.fig4()
        assert abs(fig4.pearson_r_pre_declaration) < 0.45

    def test_cases_grow_monotonically(self, study):
        fig4 = study.fig4()
        assert np.all(np.diff(fig4.cumulative_cases) >= 0)

    def test_scatter_covers_study_window(self, study, calendar):
        fig4 = study.fig4()
        assert fig4.days.size == (calendar.weeks >= BASELINE_WEEK).sum()

    def test_weekend_flags_present(self, study):
        fig4 = study.fig4()
        assert 0.2 < fig4.is_weekend.mean() < 0.35


class TestFig5Regional:
    def test_five_regions_reported(self, study):
        fig5 = study.fig5()
        for metric in ("gyration", "entropy"):
            assert len(fig5[metric].values) == 5

    def test_all_regions_drop_in_lockdown(self, study):
        fig5 = study.fig5()["gyration"]
        week14 = {
            region: fig5.at_week(region, 14)
            for region in fig5.values
        }
        baseline = {
            region: fig5.at_week(region, 9) for region in fig5.values
        }
        for region in week14:
            assert week14[region] < baseline[region] - 20.0

    def test_london_gyration_below_national_baseline(self, study):
        # Paper: London gyration ~20% below the national average.
        fig5 = study.fig5()["gyration"]
        assert fig5.at_week("Inner London", 9) < -5.0

    def test_london_entropy_above_national_baseline(self, study):
        fig5 = study.fig5()["entropy"]
        assert fig5.at_week("Inner London", 9) > 3.0

    def test_london_relaxes_more_than_midlands_by_week_19(self, study):
        # Paper §3.2: London and West Yorkshire loosen in weeks 18–19;
        # Greater Manchester / West Midlands stay low.
        fig5 = study.fig5()["gyration"]
        london_recovery = fig5.at_week("Inner London", 19) - fig5.at_week(
            "Inner London", 14
        )
        midlands_recovery = fig5.at_week(
            "West Midlands", 19
        ) - fig5.at_week("West Midlands", 14)
        assert london_recovery > midlands_recovery


class TestFig6Geodemographic:
    def test_all_clusters_drop(self, study):
        fig6 = study.fig6()["gyration"]
        for cluster in fig6.values:
            drop = fig6.at_week(cluster, 14) - fig6.at_week(cluster, 9)
            assert drop < -20.0

    def test_rural_baseline_gyration_above_national(self, study):
        fig6 = study.fig6()["gyration"]
        assert fig6.at_week("Rural Residents", 9) > 5.0

    def test_central_clusters_higher_entropy_baseline(self, study):
        fig6 = study.fig6()["entropy"]
        central = fig6.at_week("Ethnicity Central", 9)
        rural = fig6.at_week("Rural Residents", 9)
        assert central > rural

    def test_ethnicity_central_smallest_entropy_reduction(self, study):
        # Paper §3.3: the Ethnicity Central group reduces gyration the
        # most but entropy the least among the dense urban clusters.
        fig6 = study.fig6()
        entropy = fig6["entropy"]
        clusters = [
            name
            for name in entropy.values
            if name
            in ("Ethnicity Central", "Cosmopolitans", "Suburbanites")
        ]
        drops = {
            name: entropy.at_week(name, 14) - entropy.at_week(name, 9)
            for name in clusters
        }
        assert drops["Ethnicity Central"] == max(drops.values())
