"""Tests for the extended mobility-metric family."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import mobility_entropy
from repro.core.metrics_extra import (
    predictability_bound,
    random_entropy,
    top_location_share,
    visited_towers,
)


class TestVisitedTowers:
    def test_counts_distinct(self):
        dwell = np.array([[100.0, 200.0, 0.0]])
        sites = np.array([[1, 2, 3]])
        assert visited_towers(dwell, sites)[0] == 2

    def test_duplicates_merged(self):
        dwell = np.array([[100.0, 200.0, 50.0]])
        sites = np.array([[1, 1, 2]])
        assert visited_towers(dwell, sites)[0] == 2

    def test_zero_row(self):
        dwell = np.array([[0.0, 0.0]])
        sites = np.array([[1, 2]])
        assert visited_towers(dwell, sites)[0] == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            visited_towers(np.ones((1, 2)), np.ones((1, 3), dtype=int))


class TestRandomEntropy:
    def test_log_n(self):
        dwell = np.array([[100.0, 1.0, 5.0]])
        sites = np.array([[1, 2, 3]])
        assert random_entropy(dwell, sites)[0] == pytest.approx(np.log(3))

    def test_upper_bounds_uncorrelated(self):
        rng = np.random.default_rng(5)
        dwell = rng.random((50, 8)) * 3600
        sites = np.tile(np.arange(8), (50, 1))
        s_rand = random_entropy(dwell, sites)
        s_unc = mobility_entropy(dwell, sites)
        assert np.all(s_unc <= s_rand + 1e-9)

    def test_zero_row(self):
        assert random_entropy(
            np.array([[0.0]]), np.array([[1]])
        )[0] == 0.0


class TestTopLocationShare:
    def test_dominant_share(self):
        dwell = np.array([[75.0, 25.0]])
        sites = np.array([[1, 2]])
        assert top_location_share(dwell, sites)[0] == pytest.approx(0.75)

    def test_merged_duplicates(self):
        dwell = np.array([[40.0, 40.0, 20.0]])
        sites = np.array([[1, 1, 2]])
        assert top_location_share(dwell, sites)[0] == pytest.approx(0.8)

    def test_unobserved_zero(self):
        assert top_location_share(
            np.array([[0.0]]), np.array([[1]])
        )[0] == 0.0

    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_share_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        dwell = rng.random((5, 6)) * 1000
        sites = rng.integers(0, 4, size=(5, 6))
        share = top_location_share(dwell, sites)
        assert np.all(share >= 0)
        assert np.all(share <= 1.0 + 1e-12)


class TestPredictabilityBound:
    def test_zero_entropy_fully_predictable(self):
        out = predictability_bound(np.array([0.0]), np.array([5.0]))
        assert out[0] == pytest.approx(1.0)

    def test_max_entropy_uniform(self):
        out = predictability_bound(
            np.array([np.log(4)]), np.array([4.0])
        )
        assert out[0] == pytest.approx(0.25)

    def test_single_location(self):
        out = predictability_bound(np.array([0.5]), np.array([1.0]))
        assert out[0] == 1.0

    def test_monotone_in_entropy(self):
        entropies = np.array([0.2, 0.6, 1.0])
        counts = np.full(3, 6.0)
        out = predictability_bound(entropies, counts)
        assert out[0] > out[1] > out[2]

    def test_satisfies_fano_equation(self):
        s, n = 0.8, 5.0
        pi = predictability_bound(np.array([s]), np.array([n]))[0]
        h = -pi * np.log(pi) - (1 - pi) * np.log(1 - pi)
        assert h + (1 - pi) * np.log(n - 1) == pytest.approx(s, abs=1e-4)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            predictability_bound(np.ones(2), np.ones(3))

    def test_study_scale_usage(self, study):
        # Sanity: lockdown predictability exceeds baseline.
        feeds = study.feeds
        mobility = feeds.mobility
        day_pre = feeds.calendar.day_of(
            __import__("datetime").date(2020, 2, 25)
        )
        day_lock = feeds.calendar.day_of(
            __import__("datetime").date(2020, 3, 31)
        )
        sites = mobility.anchor_sites

        def mean_bound(day):
            dwell = mobility.dwell(day).astype(np.float64)
            entropy = mobility_entropy(dwell, sites)
            counts = visited_towers(dwell, sites)
            sample = slice(0, 500)
            return predictability_bound(
                entropy[sample], counts[sample].astype(float)
            ).mean()

        assert mean_bound(day_lock) > mean_bound(day_pre)
