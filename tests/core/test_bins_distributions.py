"""Tests for bin-level metrics and percentile fans."""

import datetime as dt

import numpy as np
import pytest

from repro.core.bins import BIN_LABELS, compute_bin_metrics
from repro.core.distributions import weekly_percentile_fan
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator


@pytest.fixture(scope="module")
def bin_feeds():
    config = SimulationConfig(
        num_users=800, target_site_count=120, seed=51,
        keep_bin_dwell=True,
    )
    return Simulator(config).run()


class TestBinMetrics:
    def test_requires_bin_dwell(self, feeds):
        with pytest.raises(ValueError, match="keep_bin_dwell"):
            compute_bin_metrics(feeds)

    def test_shapes(self, bin_feeds):
        metrics = compute_bin_metrics(bin_feeds)
        assert metrics.entropy.shape == (bin_feeds.calendar.num_days, 6)
        assert metrics.num_days == bin_feeds.calendar.num_days

    def test_six_bin_labels(self):
        assert len(BIN_LABELS) == 6
        assert BIN_LABELS[0] == "00-04"

    def test_night_bins_quietest(self, bin_feeds):
        metrics = compute_bin_metrics(bin_feeds)
        day = bin_feeds.calendar.day_of(dt.date(2020, 2, 25))
        # Nights are spent at one tower: near-zero entropy and gyration.
        assert metrics.entropy[day, 0] < metrics.entropy[day, 3]
        assert metrics.gyration_km[day, 0] < metrics.gyration_km[day, 3]

    def test_commute_bins_collapse_hardest(self, bin_feeds):
        metrics = compute_bin_metrics(bin_feeds)
        calendar = bin_feeds.calendar
        before = calendar.day_of(dt.date(2020, 2, 25))
        during = calendar.day_of(dt.date(2020, 3, 31))
        work_drop = 1 - metrics.gyration_km[during, 2] / max(
            metrics.gyration_km[before, 2], 1e-9
        )
        night_values = (
            metrics.gyration_km[during, 0],
            metrics.gyration_km[before, 0],
        )
        # The 08-12 bin loses a large share of its range; nights barely
        # change (both are tiny).
        assert work_drop > 0.2
        assert night_values[0] == pytest.approx(
            night_values[1], abs=0.5
        )

    def test_bin_series_accessor(self, bin_feeds):
        metrics = compute_bin_metrics(bin_feeds)
        series = metrics.bin_series("gyration", 2)
        assert series.shape == (bin_feeds.calendar.num_days,)
        with pytest.raises(IndexError):
            metrics.bin_series("gyration", 6)
        with pytest.raises(KeyError):
            metrics.bin_series("nope", 0)


class TestPercentileFan:
    def test_fan_structure(self, study, feeds):
        labeled = study.labeled_kpis
        analysis = labeled.filter(labeled["week"] >= 9)
        fan = weekly_percentile_fan(
            analysis["dl_volume_mb"], analysis["week"]
        )
        assert set(fan.series) == {10.0, 25.0, 50.0, 75.0, 90.0}
        assert all(v.shape == fan.weeks.shape for v in fan.series.values())

    def test_percentiles_follow_similar_trends(self, study):
        # The paper's observation: all percentiles track the median.
        labeled = study.labeled_kpis
        analysis = labeled.filter(labeled["week"] >= 9)
        fan = weekly_percentile_fan(
            analysis["dl_volume_mb"], analysis["week"],
            percentiles=(25.0, 50.0, 75.0),
        )
        assert fan.trend_correlation() > 0.8

    def test_baseline_week_zero_for_all_percentiles(self, study):
        labeled = study.labeled_kpis
        analysis = labeled.filter(labeled["week"] >= 9)
        fan = weekly_percentile_fan(
            analysis["connected_users"], analysis["week"]
        )
        for series in fan.series.values():
            assert series[0] == pytest.approx(0.0, abs=1e-9)

    def test_band_spread_shape(self, study):
        labeled = study.labeled_kpis
        analysis = labeled.filter(labeled["week"] >= 9)
        fan = weekly_percentile_fan(
            analysis["dl_volume_mb"], analysis["week"]
        )
        assert fan.band_spread().shape == fan.weeks.shape

    def test_empty_percentiles_rejected(self):
        with pytest.raises(ValueError):
            weekly_percentile_fan(
                np.array([1.0]), np.array([9]), percentiles=()
            )
