"""Tests for the Inner-London relocation matrix (Fig 7)."""

import numpy as np
import pytest

from repro.core import relocation_matrix


@pytest.fixture(scope="module")
def matrix(study):
    return study.fig7()


class TestRelocationMatrix:
    def test_inner_london_row_first(self, matrix):
        assert matrix.counties[0] == "Inner London"

    def test_shape(self, matrix):
        assert matrix.change_pct.shape == (
            len(matrix.counties),
            matrix.days.size,
        )
        assert len(matrix.counties) <= 11

    def test_sustained_presence_decrease_after_lockdown(
        self, matrix, calendar
    ):
        # Paper: a permanent ~10% decrease of Inner-London residents
        # present in Inner London from week 13 onward.
        weeks = calendar.weeks[matrix.days]
        series = matrix.county_series("Inner London")
        lockdown = series[weeks >= 14].mean()
        assert -16.0 < lockdown < -4.0

    def test_baseline_near_zero_on_weekdays(self, matrix, calendar):
        # Weekdays only: pre-pandemic weekends legitimately dip (the
        # weekend-away pattern the paper reports).
        weeks = calendar.weeks[matrix.days]
        weekday = ~calendar.is_weekend[matrix.days]
        series = matrix.county_series("Inner London")
        assert abs(series[(weeks == 9) & weekday].mean()) < 3.0

    def test_away_share_rises_during_lockdown(self, matrix, calendar):
        weeks = calendar.weeks[matrix.days]
        baseline_days = np.flatnonzero(weeks == 9)
        lockdown_days = np.flatnonzero(weeks == 15)
        baseline = np.mean(
            [matrix.away_share(int(d)) for d in baseline_days]
        )
        lockdown = np.mean(
            [matrix.away_share(int(d)) for d in lockdown_days]
        )
        assert lockdown > baseline + 0.04

    def test_receiving_counties_gain_residents(self, matrix, calendar):
        # Relocation destinations must show a sustained increase.
        weeks = calendar.weeks[matrix.days]
        gains = []
        for county in matrix.counties[1:]:
            series = matrix.county_series(county)
            gains.append(series[weeks >= 14].mean())
        assert max(gains) > 10.0

    def test_paper_destinations_in_matrix(self, matrix):
        # Hampshire / Kent / East Sussex should rank among receivers.
        assert {"Hampshire", "Kent", "East Sussex"} & set(matrix.counties)

    def test_pre_lockdown_exodus_spike(self, matrix, calendar):
        # March 21–22: trips out of London spike just before the order.
        day_21 = calendar.day_of(__import__("datetime").date(2020, 3, 21))
        column = np.flatnonzero(matrix.days == day_21)
        assert column.size == 1
        outbound = matrix.change_pct[1:, column[0]]
        assert outbound.max() > 25.0

    def test_weekend_away_pattern_disappears(self, matrix, calendar):
        # Paper: pre-pandemic weekends show Londoners away; the pattern
        # vanishes after the distancing recommendations.
        weeks = calendar.weeks[matrix.days]
        weekend = calendar.is_weekend[matrix.days]
        series = matrix.county_series("Inner London")
        pre = weeks <= 10
        weekend_dip = (
            series[pre & weekend].mean() - series[pre & ~weekend].mean()
        )
        assert weekend_dip < -1.0  # fewer residents present on weekends

    def test_presence_counts_bounded_by_residents(self, matrix):
        assert matrix.presence.max() <= matrix.num_residents

    def test_to_frame(self, matrix):
        frame = matrix.to_frame()
        assert frame["county"].tolist() == matrix.counties
        assert len(frame.column_names) == matrix.days.size + 1
        first_day = str(int(matrix.days[0]))
        assert frame[first_day].tolist() == matrix.change_pct[:, 0].tolist()

    def test_custom_threshold_and_top(self, feeds, study):
        small = relocation_matrix(
            feeds, study.homes, top_counties=3,
            presence_threshold_s=3600.0,
        )
        assert len(small.counties) <= 4
