"""Tests for weekly-rhythm and recovery-slope analyses."""

import numpy as np
import pytest

from repro.core.recovery import rank_recoveries, recovery_slope
from repro.core.report import heatmap
from repro.core.seasonality import weekly_rhythm


class TestWeeklyRhythm:
    def test_lockdown_flattens_the_week(self, study, feeds):
        fig3 = study.fig3()["gyration"]
        rhythm = weekly_rhythm(
            fig3.values["UK"], fig3.x, feeds.calendar
        )
        # Pre-pandemic weeks have a clear weekday > weekend gap
        # (footnote 2 of the paper); lockdown shrinks it (residual
        # essential commuting keeps some rhythm alive).
        assert rhythm.gap_at(9) > 10.0
        assert rhythm.gap_at(15) < rhythm.gap_at(9) * 0.8

    def test_gap_accessor(self, study, feeds):
        fig3 = study.fig3()["gyration"]
        rhythm = weekly_rhythm(fig3.values["UK"], fig3.x, feeds.calendar)
        assert rhythm.gap.shape == rhythm.weeks.shape
        with pytest.raises(KeyError):
            rhythm.gap_at(42)

    def test_misaligned_rejected(self, feeds):
        with pytest.raises(ValueError):
            weekly_rhythm(np.ones(3), np.arange(4), feeds.calendar)


class TestRecoverySlopes:
    def test_london_recovers_faster_than_midlands(self, study):
        fig5 = study.fig5()["gyration"]
        london = recovery_slope(fig5, "Inner London")
        midlands = recovery_slope(fig5, "West Midlands")
        assert london.slope_pp_per_week > midlands.slope_pp_per_week

    def test_ranking_order(self, study):
        fig5 = study.fig5()["gyration"]
        ranked = rank_recoveries(fig5)
        slopes = [fit.slope_pp_per_week for fit in ranked]
        assert slopes == sorted(slopes, reverse=True)
        assert len(ranked) == len(fig5.values)

    def test_slope_fit_on_synthetic_line(self, study):
        fig5 = study.fig5()["gyration"]
        fit = recovery_slope(fig5, "Inner London", 14, 19)
        # The fit reproduces the series endpoints approximately.
        predicted_19 = fit.intercept + fit.slope_pp_per_week * 19
        actual_19 = fig5.at_week("Inner London", 19)
        assert predicted_19 == pytest.approx(actual_19, abs=8.0)

    def test_requires_weekly_series(self, study):
        fig3 = study.fig3()["gyration"]
        with pytest.raises(ValueError):
            recovery_slope(fig3, "UK")

    def test_window_too_small(self, study):
        fig5 = study.fig5()["gyration"]
        with pytest.raises(ValueError):
            recovery_slope(fig5, "Inner London", 19, 19)


class TestHeatmap:
    def test_renders_rows(self):
        matrix = np.array([[0.0, -50.0], [0.0, 120.0]])
        out = heatmap(matrix, ["home", "away"], title="Fig 7")
        assert "home" in out and "away" in out
        assert "scale:" in out

    def test_nan_marker(self):
        out = heatmap(np.array([[np.nan, 1.0]]), ["row"])
        assert "·" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros(3), ["a"])
        with pytest.raises(ValueError):
            heatmap(np.zeros((2, 2)), ["a"])

    def test_fig7_heatmap_renders(self, study):
        matrix = study.fig7()
        out = heatmap(
            matrix.change_pct,
            matrix.counties,
            title="Fig 7 — Inner-London residents per county",
        )
        assert "Inner London" in out
