"""Tests for the command-line interface."""

import io
import json

import pytest

from repro import telemetry
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "--preset", "tiny", "--seed", "3", "--out", "x"]
        )
        assert args.preset == "tiny"
        assert args.seed == 3

    def test_bad_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--preset", "huge", "--out", "x"]
            )


class TestCommands:
    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "run"
        out = io.StringIO()
        code = main(
            [
                "simulate", "--preset", "tiny", "--seed", "13",
                "--users", "800", "--out", str(path),
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "saved" in text
        assert "simulated day" in text  # progress meter
        return path

    def test_summary(self, run_dir):
        out = io.StringIO()
        assert main(["summary", str(run_dir)], out=out) == 0
        text = out.getvalue()
        assert "gyration_change_lockdown_pct" in text
        assert "voice_volume_peak_pct" in text

    def test_analyze(self, run_dir):
        out = io.StringIO()
        assert main(["analyze", str(run_dir)], out=out) == 0
        text = out.getvalue()
        assert "Fig 3" in text
        assert "Fig 9" in text

    def test_verdict(self, run_dir):
        out = io.StringIO()
        assert main(["verdict", str(run_dir)], out=out) == 0
        text = out.getvalue()
        assert "targets inside the band" in text

    def test_export(self, run_dir, tmp_path):
        out = io.StringIO()
        target = tmp_path / "csvs"
        code = main(
            ["export", str(run_dir), "--out", str(target)],
            out=out,
        )
        assert code == 0
        assert (target / "summary.csv").exists()
        assert (target / "performance_weekly.csv").exists()

    def test_report_without_saving(self):
        out = io.StringIO()
        code = main(
            ["report", "--preset", "tiny", "--seed", "5", "--users", "600"],
            out=out,
        )
        assert code == 0
        assert "Headline numbers" in out.getvalue()

    def test_report_on_a_run_dir(self, run_dir):
        out = io.StringIO()
        assert main(["report", str(run_dir)], out=out) == 0
        assert "Headline numbers" in out.getvalue()

    def test_summary_and_verdict_take_telemetry(self, run_dir):
        for command in ("summary", "verdict"):
            out = io.StringIO()
            code = main([command, str(run_dir), "--telemetry"], out=out)
            assert code == 0
            # Warm runs are served from the cache, so the appended
            # table shows counters rather than engine phases.
            assert "cache.hits" in out.getvalue()

    def test_watch_on_frozen_run(self, run_dir):
        # A frozen run gets exactly one refresh, then watch stops on
        # its own: the manifest has no live block left to poll.
        out = io.StringIO()
        code = main(["watch", str(run_dir), "--interval", "0"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "== day 98/98 ==" in text
        assert "targets inside the band" in text  # the verdict
        assert "refreshed in" in text
        assert "frozen at 98 days" in text

    def test_watch_waits_for_a_manifest(self, tmp_path):
        out = io.StringIO()
        code = main(
            [
                "watch", str(tmp_path / "nothing-yet"),
                "--interval", "0", "--iterations", "2",
            ],
            out=out,
        )
        assert code == 0
        assert out.getvalue().count("waiting for") == 2


class TestAnalysisCache:
    """The persistent artifact cache behind analyze/summary/report."""

    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cache") / "run"
        out = io.StringIO()
        assert main(
            [
                "simulate", "--preset", "tiny", "--seed", "17",
                "--users", "600", "--out", str(path),
            ],
            out=out,
        ) == 0
        return path

    @staticmethod
    def _run(argv):
        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_warm_analyze_is_byte_identical_without_feeds(
        self, run_dir, monkeypatch
    ):
        code, cold = self._run(["analyze", str(run_dir)])
        assert code == 0
        assert (run_dir / "cache" / "analysis").is_dir()

        # Warm: the report comes straight from the cache — loading the
        # feeds at all would be a bug, so make it one.
        def refuse(directory):
            raise AssertionError("warm analyze must not load feeds")

        monkeypatch.setattr("repro.io.load_feeds", refuse)
        code, warm = self._run(["analyze", str(run_dir)])
        assert code == 0
        assert warm == cold

    def test_warm_summary_and_verdict(self, run_dir, monkeypatch):
        code, cold = self._run(["summary", str(run_dir)])
        assert code == 0
        monkeypatch.setattr(
            "repro.io.load_feeds",
            lambda directory: (_ for _ in ()).throw(AssertionError()),
        )
        code, warm = self._run(["summary", str(run_dir)])
        assert code == 0
        assert warm == cold
        code, verdict = self._run(["verdict", str(run_dir)])
        assert code == 0
        assert "targets inside the band" in verdict

    def test_no_cache_flag_matches_and_writes_nothing(self, run_dir):
        import shutil

        code, cached = self._run(["analyze", str(run_dir)])
        assert code == 0
        shutil.rmtree(run_dir / "cache")
        code, fresh = self._run(["analyze", str(run_dir), "--no-cache"])
        assert code == 0
        assert fresh == cached
        assert not (run_dir / "cache").exists()

    def test_cache_info_and_clear(self, run_dir):
        code, _ = self._run(["summary", str(run_dir)])
        assert code == 0
        code, text = self._run(["cache", str(run_dir), "--info"])
        assert code == 0
        assert "cached artifacts" in text
        assert str(run_dir / "cache" / "analysis") in text

        code, text = self._run(["cache", str(run_dir), "--clear"])
        assert code == 0
        assert "cleared" in text
        assert not (run_dir / "cache" / "analysis").exists()

        # Default (no flag) reports info; an empty store reads as zero.
        code, text = self._run(["cache", str(run_dir)])
        assert code == 0
        assert "0 cached artifacts" in text

    def test_cache_flags_mutually_exclusive(self, run_dir):
        code, text = self._run(
            ["cache", str(run_dir), "--info", "--clear"]
        )
        assert code == 2

    def test_cache_on_a_non_run_dir(self, tmp_path):
        code, text = self._run(["cache", str(tmp_path / "nope")])
        assert code == 2
        assert "Traceback" not in text

    def test_corrupt_entry_recovers_identically(self, run_dir):
        code, cold = self._run(["summary", str(run_dir)])
        assert code == 0
        store = run_dir / "cache" / "analysis"
        for entry in store.glob("*.npz"):
            entry.write_bytes(b"\x00" * 48)
        code, recovered = self._run(["summary", str(run_dir)])
        assert code == 0
        assert recovered == cold


class TestFeedsAlias:
    """--feeds still works everywhere, but deprecated and warning."""

    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("alias") / "run"
        out = io.StringIO()
        assert main(
            [
                "simulate", "--preset", "tiny", "--seed", "13",
                "--users", "600", "--out", str(path),
            ],
            out=out,
        ) == 0
        return path

    def test_alias_warns_and_works(self, run_dir, capsys):
        out = io.StringIO()
        with pytest.warns(DeprecationWarning, match="positional"):
            assert main(["summary", "--feeds", str(run_dir)], out=out) == 0
        assert "gyration_change_lockdown_pct" in out.getvalue()
        assert "deprecated" in capsys.readouterr().err

    def test_positional_does_not_warn(self, run_dir):
        import warnings

        out = io.StringIO()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert main(["summary", str(run_dir)], out=out) == 0

    def test_both_forms_rejected(self, run_dir):
        out = io.StringIO()
        code = main(
            ["summary", str(run_dir), "--feeds", str(run_dir)], out=out
        )
        assert code == 2
        assert "once" in out.getvalue()


class TestErrorPaths:
    def test_rundir_required(self):
        for command in ("analyze", "summary", "verdict"):
            out = io.StringIO()
            assert main([command], out=out) == 2
            assert "required" in out.getvalue()

    def test_simulate_needs_out_or_resume(self):
        out = io.StringIO()
        assert main(["simulate"], out=out) == 2
        assert "--out or --resume" in out.getvalue()

    def test_simulate_rejects_out_with_resume(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["simulate", "--resume", str(tmp_path), "--out", str(tmp_path)],
            out=out,
        )
        assert code == 2

    def test_missing_run_dir_is_one_line(self, tmp_path):
        out = io.StringIO()
        assert main(["analyze", str(tmp_path / "nope")], out=out) == 1
        text = out.getvalue()
        assert "does not exist" in text
        assert "Traceback" not in text


class TestCrashAndResume:
    def test_interrupt_then_resume(self, tmp_path, monkeypatch):
        # A deterministic kill via the REPRO_FAULTS environment hook
        # aborts the run; the CLI reports the resume command; running
        # it completes the directory into a loadable run.
        path = tmp_path / "run"
        argv = [
            "simulate", "--preset", "tiny", "--seed", "13",
            "--users", "600", "--out", str(path),
        ]
        monkeypatch.setenv("REPRO_FAULTS", "kill:day=5")
        out = io.StringIO()
        assert main(argv, out=out) == 1
        assert "--resume" in out.getvalue()
        assert not (path / "manifest.json").exists()
        assert (path / "checkpoints").is_dir()

        monkeypatch.delenv("REPRO_FAULTS")
        out = io.StringIO()
        assert main(["simulate", "--resume", str(path)], out=out) == 0
        assert "saved" in out.getvalue()
        assert (path / "manifest.json").exists()
        assert not (path / "checkpoints").exists()  # cleaned up

        out = io.StringIO()
        assert main(["summary", str(path)], out=out) == 0

    def test_no_checkpoint_flag(self, tmp_path):
        path = tmp_path / "run"
        out = io.StringIO()
        code = main(
            [
                "simulate", "--preset", "tiny", "--seed", "13",
                "--users", "600", "--out", str(path), "--no-checkpoint",
            ],
            out=out,
        )
        assert code == 0
        assert not (path / "checkpoints").exists()

    def test_resume_without_checkpoints_fails_cleanly(self, tmp_path):
        out = io.StringIO()
        code = main(["simulate", "--resume", str(tmp_path / "x")], out=out)
        assert code == 1
        assert "nothing to resume" in out.getvalue()


class TestScenarioCommands:
    def test_scenarios_lists_the_catalog(self):
        out = io.StringIO()
        assert main(["scenarios"], out=out) == 0
        text = out.getvalue()
        for name in ("baseline_lockdown", "second_wave", "weekend_curfew"):
            assert name in text

    def test_scenarios_digests_flag(self):
        out = io.StringIO()
        assert main(["scenarios", "--digests"], out=out) == 0
        # one 12-hex-digit digest per catalog line
        lines = out.getvalue().strip().splitlines()
        assert all("[" in line and "]" in line for line in lines)

    @pytest.fixture(scope="class")
    def grid_dir(self, tmp_path_factory):
        return tmp_path_factory.mktemp("cli-grid") / "grid"

    @pytest.fixture(scope="class")
    def cold_experiment(self, grid_dir):
        from repro.datasets.runcache import clear_memo

        clear_memo()
        out = io.StringIO()
        code = main(
            [
                "experiment", "no_intervention", "second_wave",
                "--seeds", "1,2", "--preset", "tiny", "--users", "300",
                "--workdir", str(grid_dir),
            ],
            out=out,
        )
        assert code == 0
        return out.getvalue()

    def test_experiment_runs_grid_and_reports(self, cold_experiment):
        assert cold_experiment.count("simulated") == 6
        assert "Headline deltas vs baseline" in cold_experiment
        assert "Weekly variation — national gyration" in cold_experiment

    def test_warm_experiment_reuses_and_matches_report(
        self, cold_experiment, grid_dir
    ):
        from repro.datasets.runcache import clear_memo

        clear_memo()
        out = io.StringIO()
        code = main(
            [
                "experiment", "no_intervention", "second_wave",
                "--seeds", "1,2", "--preset", "tiny", "--users", "300",
                "--workdir", str(grid_dir),
            ],
            out=out,
        )
        assert code == 0
        warm = out.getvalue()
        assert warm.count("reused") == 6
        # Identical report bytes: strip the progress prologue (the
        # only part allowed to differ between cold and warm).
        marker = "Experiment grid —"
        assert warm[warm.index(marker):] == cold_experiment[
            cold_experiment.index(marker):
        ]

    def test_experiment_rejects_unknown_scenario(self):
        out = io.StringIO()
        code = main(
            ["experiment", "no_such_world", "--preset", "tiny"],
            out=out,
        )
        assert code == 2
        assert "catalog" in out.getvalue()

    def test_experiment_rejects_bad_seeds(self):
        out = io.StringIO()
        code = main(
            [
                "experiment", "no_intervention",
                "--seeds", "one,two", "--preset", "tiny",
            ],
            out=out,
        )
        assert code == 2
        assert "--seeds" in out.getvalue()

    def test_compare_over_cell_directories(self, cold_experiment, grid_dir):
        out = io.StringIO()
        code = main(
            [
                "compare",
                str(grid_dir / "baseline_lockdown--seed1"),
                str(grid_dir / "no_intervention--seed1"),
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "baseline: baseline_lockdown--seed1" in text
        assert "Headline deltas vs baseline" in text

    def test_compare_needs_two_directories(self, cold_experiment, grid_dir):
        out = io.StringIO()
        code = main(
            ["compare", str(grid_dir / "baseline_lockdown--seed1")],
            out=out,
        )
        assert code == 2

    def test_compare_missing_directory_is_one_line(self, tmp_path):
        out = io.StringIO()
        code = main(
            [
                "compare",
                str(tmp_path / "nope-a"), str(tmp_path / "nope-b"),
            ],
            out=out,
        )
        assert code == 1
        assert out.getvalue().startswith("error:")


class TestTelemetryFlag:
    def test_report_prints_phase_table(self):
        out = io.StringIO()
        code = main(
            [
                "report", "--preset", "tiny", "--seed", "3",
                "--users", "600", "--telemetry",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "Headline numbers" in text  # the normal output survives
        table = text[text.index("phase"):]
        for row in ("simulate", "build_world", "shard", "report"):
            assert row in table
        assert not telemetry.enabled()  # the CLI cleans up after itself

    def test_simulate_persists_snapshot(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "run"
        code = main(
            [
                "simulate", "--preset", "tiny", "--seed", "3",
                "--users", "600", "--out", str(path), "--telemetry",
            ],
            out=out,
        )
        assert code == 0
        assert "phase" in out.getvalue()
        manifest = json.loads((path / "manifest.json").read_text())
        assert "simulate" in manifest["telemetry"]["spans"]
        assert not telemetry.enabled()
