"""Tests for the command-line interface."""

import io
import json

import pytest

from repro import telemetry
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "--preset", "tiny", "--seed", "3", "--out", "x"]
        )
        assert args.preset == "tiny"
        assert args.seed == 3

    def test_bad_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--preset", "huge", "--out", "x"]
            )


class TestCommands:
    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "run"
        out = io.StringIO()
        code = main(
            [
                "simulate", "--preset", "tiny", "--seed", "13",
                "--users", "800", "--out", str(path),
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "saved" in text
        assert "simulated day" in text  # progress meter
        return path

    def test_summary(self, run_dir):
        out = io.StringIO()
        assert main(["summary", "--feeds", str(run_dir)], out=out) == 0
        text = out.getvalue()
        assert "gyration_change_lockdown_pct" in text
        assert "voice_volume_peak_pct" in text

    def test_analyze(self, run_dir):
        out = io.StringIO()
        assert main(["analyze", "--feeds", str(run_dir)], out=out) == 0
        text = out.getvalue()
        assert "Fig 3" in text
        assert "Fig 9" in text

    def test_verdict(self, run_dir):
        out = io.StringIO()
        assert main(["verdict", "--feeds", str(run_dir)], out=out) == 0
        text = out.getvalue()
        assert "targets inside the band" in text

    def test_export(self, run_dir, tmp_path):
        out = io.StringIO()
        target = tmp_path / "csvs"
        code = main(
            ["export", "--feeds", str(run_dir), "--out", str(target)],
            out=out,
        )
        assert code == 0
        assert (target / "summary.csv").exists()
        assert (target / "performance_weekly.csv").exists()

    def test_report_without_saving(self):
        out = io.StringIO()
        code = main(
            ["report", "--preset", "tiny", "--seed", "5", "--users", "600"],
            out=out,
        )
        assert code == 0
        assert "Headline numbers" in out.getvalue()


class TestTelemetryFlag:
    def test_report_prints_phase_table(self):
        out = io.StringIO()
        code = main(
            [
                "report", "--preset", "tiny", "--seed", "3",
                "--users", "600", "--telemetry",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "Headline numbers" in text  # the normal output survives
        table = text[text.index("phase"):]
        for row in ("simulate", "build_world", "shard", "report"):
            assert row in table
        assert not telemetry.enabled()  # the CLI cleans up after itself

    def test_simulate_persists_snapshot(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "run"
        code = main(
            [
                "simulate", "--preset", "tiny", "--seed", "3",
                "--users", "600", "--out", str(path), "--telemetry",
            ],
            out=out,
        )
        assert code == 0
        assert "phase" in out.getvalue()
        manifest = json.loads((path / "manifest.json").read_text())
        assert "simulate" in manifest["telemetry"]["spans"]
        assert not telemetry.enabled()
