"""Unit tests for the per-shard, per-day checkpoint store.

The store's whole value is that a resumed run is *bitwise* the
uninterrupted run, so the contract under test is strict: a round-trip
through disk reproduces every array exactly, anything damaged —
flipped bytes, a file renamed onto another (shard, day), a config that
doesn't match — is rejected with :class:`CheckpointError` naming the
offending file, and partial writes (the ``.tmp`` of a crashed
``save_day``) are invisible.
"""

import datetime as dt

import numpy as np
import pytest

from repro.simulation.checkpoint import (
    CheckpointError,
    CheckpointStore,
    config_digest,
)
from repro.simulation.clock import StudyCalendar
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import _compute_shard, _RunContext, build_world
from repro.simulation.faults import RecoverySettings, corrupt_file

_CALENDAR = StudyCalendar(first_day=dt.date(2020, 2, 24), num_days=7)


def _config(**overrides):
    return SimulationConfig.tiny(seed=9).with_overrides(
        num_users=120, target_site_count=40, calendar=_CALENDAR, **overrides
    )


@pytest.fixture(scope="module")
def day_loads():
    """Real per-day shard loads to round-trip (computed once)."""
    config = _config()
    context = _RunContext.from_world(build_world(config))
    result = _compute_shard(context, None)
    return config, result.days


class TestRoundTrip:
    def test_bitwise(self, day_loads, tmp_path):
        config, days = day_loads
        store = CheckpointStore.attach(tmp_path / "run", config)
        for day, load in enumerate(days):
            store.save_day(0, day, load)
        for day, load in enumerate(days):
            back = store.load_day(0, day)
            for field in load.__dataclass_fields__:
                original = getattr(load, field)
                restored = getattr(back, field)
                if original is None:
                    assert restored is None, field
                elif isinstance(original, float):
                    assert original == restored, field
                else:
                    assert np.array_equal(
                        np.asarray(original), np.asarray(restored)
                    ), f"{field} not bitwise equal"

    def test_completed_days(self, day_loads, tmp_path):
        config, days = day_loads
        store = CheckpointStore.attach(tmp_path / "run", config)
        store.save_day(2, 0, days[0])
        store.save_day(2, 3, days[3])
        assert store.completed_days(2) == [0, 3]
        assert store.completed_days(0) == []

    def test_reattach_and_reopen(self, day_loads, tmp_path):
        config, days = day_loads
        store = CheckpointStore.attach(tmp_path / "run", config)
        store.save_day(0, 1, days[1])
        # A second attach with the same config sees the saved day...
        again = CheckpointStore.attach(tmp_path / "run", config)
        assert again.completed_days(0) == [1]
        # ...and open() restores the pickled config itself.
        reopened = CheckpointStore.open(tmp_path / "run")
        assert config_digest(reopened.load_config()) == config_digest(config)

    def test_clear(self, day_loads, tmp_path):
        config, days = day_loads
        store = CheckpointStore.attach(tmp_path / "run", config)
        store.save_day(0, 0, days[0])
        assert CheckpointStore.present(tmp_path / "run")
        store.clear()
        assert not CheckpointStore.present(tmp_path / "run")


class TestRejection:
    def test_missing_day(self, day_loads, tmp_path):
        config, _ = day_loads
        store = CheckpointStore.attach(tmp_path / "run", config)
        assert store.load_day(0, 5, missing_ok=True) is None
        with pytest.raises(CheckpointError, match="missing"):
            store.load_day(0, 5)

    def test_corrupt_file_named(self, day_loads, tmp_path):
        config, days = day_loads
        store = CheckpointStore.attach(tmp_path / "run", config)
        store.save_day(0, 0, days[0])
        corrupt_file(store.day_path(0, 0))
        with pytest.raises(CheckpointError, match=r"shard000_day000\.npz"):
            store.load_day(0, 0)

    def test_misplaced_file_rejected(self, day_loads, tmp_path):
        # A checkpoint renamed onto another (shard, day) slot must not
        # be restored as that slot — identity is embedded, not just
        # the filename.
        config, days = day_loads
        store = CheckpointStore.attach(tmp_path / "run", config)
        store.save_day(0, 0, days[0])
        store.day_path(0, 0).rename(store.day_path(0, 1))
        with pytest.raises(CheckpointError, match="misplaced"):
            store.load_day(0, 1)

    def test_tmp_leftover_invisible(self, day_loads, tmp_path):
        # A crash mid-save leaves only the .tmp; the day reads as
        # absent and the leftover never shadows a later save.
        config, days = day_loads
        store = CheckpointStore.attach(tmp_path / "run", config)
        final = store.day_path(0, 0)
        final.with_name(final.name + ".tmp").write_bytes(b"half a write")
        assert store.load_day(0, 0, missing_ok=True) is None
        assert store.completed_days(0) == []
        store.save_day(0, 0, days[0])
        assert store.load_day(0, 0) is not None

    def test_foreign_config_rejected(self, day_loads, tmp_path):
        config, _ = day_loads
        CheckpointStore.attach(tmp_path / "run", config)
        other = _config(seed=10)
        with pytest.raises(CheckpointError, match="config"):
            CheckpointStore.attach(tmp_path / "run", other)


class TestConfigDigest:
    def test_operational_fields_ignored(self):
        # Faults, retry policy and worker count cannot change results,
        # so a resume that strips them must still match the store.
        base = _config()
        assert config_digest(base) == config_digest(
            base.with_overrides(
                fault_spec="kill:day=3",
                recovery=RecoverySettings(max_retries=9),
            )
        )
        assert config_digest(
            base.with_parallelism(2, workers=1)
        ) == config_digest(base.with_parallelism(2, workers=4))

    def test_result_shaping_fields_kept(self):
        base = _config()
        assert config_digest(base) != config_digest(_config(seed=10))
        assert config_digest(
            base.with_parallelism(2)
        ) != config_digest(base.with_parallelism(4))
