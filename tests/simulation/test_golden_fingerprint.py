"""Golden regression: the engine's numerics, pinned.

A tiny configuration is run end to end and every measured output array
is reduced to a SHA256 digest of its values rounded to six decimals
(:func:`tests.simulation.harness.feeds_fingerprint`).  The digests are
checked in below.  If this test fails, the engine's numerics drifted:
either an unintended behaviour change slipped in (fix it), or the
change is intentional — then regenerate with::

    PYTHONPATH=src python tests/simulation/regen_golden.py

and commit the new digests alongside the change that moved them.
"""

import datetime as dt

import pytest

from repro.simulation.clock import StudyCalendar
from repro.simulation.config import SimulationConfig

from tests.simulation.harness import feeds_fingerprint, run_config

GOLDEN = {
    "interconnect_upgrade_day": "bdbd509d27c12bad72fcdecc2bf363de24fd6e8bef9508ceb3fd8c4253c35d2d",
    "mobility.daily_dwell": "ae12100c08a9f111512d10216e50525f18f84e6f5a4291815d8cf980f64dcd9c",
    "mobility.night_dwell": "7886381ba25eae6b9d7e9a520e6264a5e6c2ec49a81e72db748b111987c99036",
    "radio_kpis.active_seconds": "0061472343940066a4be4004b6d642529c8d6001356ec28b7c39fab54720706b",
    "radio_kpis.cell_id": "9a8b19ed17a37007597d4a98bb9bab7f151309acd0d4b2d22ce2024c3d8d5006",
    "radio_kpis.connected_users": "8ee2feb17cee0b962601bc26468972ba344bcf685e0d3a11589efc66ed4a03c0",
    "radio_kpis.day": "ab2cfa86c082ee7ff8cd840a694edffdd2040864fbbaa61de933f5f448b88ff1",
    "radio_kpis.dl_active_users": "78c675857202b90c3ff473c48c107758ea8f8324f25cccd3cb0cf0686cb3a643",
    "radio_kpis.dl_volume_mb": "f0c8d7b462469cc1d703e51e94d7d2bc0b547ea47f3d2746e26f3c6885bb858c",
    "radio_kpis.postcode": "7eb87ccb4242b7f69927b3b408994ad85e460c7a756d28518ed6d85d31031747",
    "radio_kpis.radio_load_pct": "60a337d21a3a950437071332484ea14659149c8e710fa110dfeea6b237257d63",
    "radio_kpis.ul_volume_mb": "e1bd967e4fb75e76d7d2bbef881c1359c64771be43ed3624711aefd2c04d4922",
    "radio_kpis.user_dl_throughput_mbps": "00d2cc4263cbf90ee1a44eea05398d388eaccf7bc0fdbc6ade9be93e1a864fc9",
    "radio_kpis.voice_dl_loss_rate": "e8f7f20b4c89defd26305587672eb7ebba478868535aeb01ba2a15042f6fc30d",
    "radio_kpis.voice_ul_loss_rate": "4312eed5957efcbcf5fd22ccf014ae6c5f8d0dee87042a0ac5fd20b8b95ed44a",
    "radio_kpis.voice_users": "cab399047992167e515d9fcbfb345fccf31ab92b495612973d15f85b62d617a9",
    "radio_kpis.voice_volume_mb": "75f7ee4496d8929064e0e199465d7c1013572c98d5d09cc61ab2bda1ba198f62",
    "rat_time.connected_seconds": "973ad5de0d3d03c06d5da8865655545db3a4ec56745bbe2fea01aca62a4eb17c",
    "rat_time.day": "e5acb6e1c07e215e273cacc0e714dfedabbf4565f685f019ee97a7fe5ed1213d",
    "rat_time.rat": "50338a04af7b87616ca0b501dc11aad445eed86f44f00bff25995e5273d9c91c",
}


#: Digest of the signalling event feed emitted by ``golden_config()``
#: with ``emit_signaling=True``.  Every other array of that run must
#: match ``GOLDEN`` unchanged — emitting signalling draws from its own
#: RNG stream and must not perturb anything else.
GOLDEN_SIGNALING = (
    "405d0dfbf1db12a18a8071fee90ae306cbf9e92750135d6bba60439b82843123"
)


def golden_config() -> SimulationConfig:
    """The pinned configuration (small, fast, structurally complete)."""
    calendar = StudyCalendar(first_day=dt.date(2020, 2, 17), num_days=21)
    return SimulationConfig(
        num_users=180,
        target_site_count=35,
        seed=1234,
        calendar=calendar,
    )


def _assert_matches_golden(fingerprint: dict, golden: dict) -> None:
    drifted = {
        name: (golden.get(name), digest)
        for name, digest in fingerprint.items()
        if golden.get(name) != digest
    }
    missing = set(golden) - set(fingerprint)
    assert not drifted and not missing, (
        "Engine numerics drifted from the golden fingerprint.\n"
        f"Changed arrays: {sorted(drifted)}\n"
        f"Arrays no longer produced: {sorted(missing)}\n"
        "If this change is intentional, regenerate the digests with\n"
        "    PYTHONPATH=src python tests/simulation/regen_golden.py\n"
        "and commit them with the change that moved the numerics."
    )


@pytest.mark.parametrize("naive", ["", "1"], ids=["vectorized", "naive"])
def test_engine_numerics_match_golden_fingerprint(naive, monkeypatch):
    # Both dispatch paths must reproduce the digests pinned at the
    # seed: the vectorized rewrite moved nothing, and the naive oracle
    # still computes exactly what the historical loops computed.
    monkeypatch.setenv("REPRO_SIM_NAIVE", naive)
    fingerprint = feeds_fingerprint(run_config(golden_config()))
    _assert_matches_golden(fingerprint, GOLDEN)


def test_signaling_feed_matches_golden_fingerprint():
    config = golden_config().with_overrides(emit_signaling=True)
    fingerprint = feeds_fingerprint(run_config(config))
    _assert_matches_golden(
        fingerprint, {**GOLDEN, "signaling": GOLDEN_SIGNALING}
    )
