"""Integration tests for the simulation engine and its feeds."""

import numpy as np
import pytest

from repro.network.signaling import EventType
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator, build_world


@pytest.fixture(scope="module")
def feeds():
    config = SimulationConfig.tiny(seed=41)
    return Simulator(config).run()


class TestFeedsStructure:
    def test_kpi_rows_cover_all_cells_and_days(self, feeds):
        expected = feeds.topology.num_sites * feeds.calendar.num_days
        assert len(feeds.radio_kpis) == expected

    def test_kpi_metrics_non_negative(self, feeds):
        kpis = feeds.radio_kpis
        for metric in (
            "dl_volume_mb", "ul_volume_mb", "dl_active_users",
            "radio_load_pct", "voice_volume_mb",
        ):
            assert kpis[metric].min() >= 0, metric

    def test_radio_load_bounded(self, feeds):
        assert feeds.radio_kpis["radio_load_pct"].max() <= 100.0

    def test_mobility_days_match_calendar(self, feeds):
        assert feeds.mobility.num_days == feeds.calendar.num_days

    def test_daily_dwell_partitions_day(self, feeds):
        dwell = feeds.mobility.dwell(5)
        assert np.allclose(dwell.sum(axis=1), 86_400.0, atol=1.0)

    def test_night_dwell_subset_of_day(self, feeds):
        night = feeds.mobility.night(5)
        day = feeds.mobility.dwell(5)
        assert np.all(night <= day + 1e-3)

    def test_night_observation_dropout(self, feeds):
        # Some users are unobserved at night (zero rows).
        night = feeds.mobility.night(5)
        unobserved_share = (night.sum(axis=1) == 0).mean()
        assert 0.25 < unobserved_share < 0.6

    def test_cell_info_consistent(self, feeds):
        info = feeds.cell_info()
        assert len(info) == feeds.topology.num_sites
        kpi_cells = set(np.unique(feeds.radio_kpis["cell_id"]).tolist())
        assert kpi_cells == set(info["cell_id"].tolist())

    def test_rat_time_rows(self, feeds):
        assert len(feeds.rat_time) == feeds.calendar.num_days * 3

    def test_interconnect_upgrade_happened(self, feeds):
        assert feeds.interconnect_upgrade_day is not None
        date = feeds.calendar.date_of(feeds.interconnect_upgrade_day)
        # Ops response lands around mid-March (weeks 11–13).
        assert 11 <= date.isocalendar().week <= 13

    def test_determinism(self):
        first = Simulator(SimulationConfig.tiny(seed=77)).run()
        second = Simulator(SimulationConfig.tiny(seed=77)).run()
        assert np.allclose(
            first.radio_kpis["dl_volume_mb"],
            second.radio_kpis["dl_volume_mb"],
        )
        assert np.allclose(
            first.mobility.dwell(30), second.mobility.dwell(30)
        )

    def test_seed_changes_output(self):
        first = Simulator(SimulationConfig.tiny(seed=1)).run()
        second = Simulator(SimulationConfig.tiny(seed=2)).run()
        # Different seeds change the world itself (deployment sizes)
        # and the measured totals.
        assert (
            first.radio_kpis["dl_volume_mb"].sum()
            != pytest.approx(second.radio_kpis["dl_volume_mb"].sum())
        )


class TestOptionalOutputs:
    def test_hourly_kpis_when_requested(self):
        config = SimulationConfig(
            num_users=400, target_site_count=60, seed=3,
            keep_hourly_kpis=True,
        )
        feeds = Simulator(config).run()
        hourly = feeds.hourly_kpis
        assert hourly is not None
        # One row per (site, day, hour); the ≥1-site-per-district floor
        # means the deployment exceeds the nominal target.
        assert len(hourly) == (
            feeds.topology.num_sites * feeds.calendar.num_days * 24
        )
        # Daily medians must equal the median over the stored hours.
        day0 = hourly.filter(
            (hourly["day"] == 0) & (hourly["cell_id"] == hourly["cell_id"][0])
        )
        daily = feeds.radio_kpis.filter(
            (feeds.radio_kpis["day"] == 0)
            & (feeds.radio_kpis["cell_id"] == hourly["cell_id"][0])
        )
        assert daily["dl_volume_mb"][0] == pytest.approx(
            np.median(day0["dl_volume_mb"])
        )

    def test_bin_dwell_when_requested(self):
        config = SimulationConfig(
            num_users=300, target_site_count=50, seed=4,
            keep_bin_dwell=True,
        )
        feeds = Simulator(config).run()
        assert feeds.mobility.bin_dwell is not None
        assert feeds.mobility.bin_dwell[0].shape[1] == 6

    def test_signaling_when_requested(self):
        config = SimulationConfig(
            num_users=200, target_site_count=40, seed=5,
            emit_signaling=True,
        )
        feeds = Simulator(config).run()
        assert feeds.signaling is not None
        day0 = feeds.signaling[0]
        assert len(day0) > 200
        events = set(np.unique(day0["event"]).tolist())
        assert EventType.ATTACH.value in events
        assert EventType.SERVICE_REQUEST.value in events


class TestWorldBuilder:
    def test_build_world_deterministic(self):
        config = SimulationConfig.tiny(seed=9)
        first = build_world(config)
        second = build_world(config)
        assert np.array_equal(
            first.agents.anchor_sites, second.agents.anchor_sites
        )

    def test_world_holds_config(self):
        config = SimulationConfig.tiny(seed=9)
        assert build_world(config).config is config
