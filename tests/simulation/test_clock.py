"""Unit tests for the study calendar."""

import datetime as dt

import numpy as np
import pytest

from repro.simulation import StudyCalendar, default_calendar
from repro.simulation.clock import BASELINE_WEEK


@pytest.fixture(scope="module")
def calendar():
    return default_calendar()


class TestCalendar:
    def test_window(self, calendar):
        assert calendar.first_day == dt.date(2020, 2, 3)
        assert calendar.last_day == dt.date(2020, 5, 10)
        assert calendar.num_days == 98

    def test_weeks_cover_6_to_19(self, calendar):
        assert calendar.study_weeks == tuple(range(6, 20))

    def test_analysis_weeks_start_at_baseline(self, calendar):
        assert calendar.analysis_weeks[0] == BASELINE_WEEK
        assert calendar.analysis_weeks == tuple(range(9, 20))

    def test_week9_is_late_february(self, calendar):
        days = calendar.days_in_week(9)
        assert len(days) == 7
        assert calendar.date_of(int(days[0])) == dt.date(2020, 2, 24)
        assert calendar.date_of(int(days[-1])) == dt.date(2020, 3, 1)

    def test_lockdown_is_week_13(self, calendar):
        lockdown_day = calendar.day_of(calendar.key_dates.lockdown)
        assert calendar.iso_week(lockdown_day) == 13
        assert calendar.weekdays[lockdown_day] == 0  # Monday

    def test_pandemic_declared_week_11(self, calendar):
        day = calendar.day_of(calendar.key_dates.pandemic_declared)
        assert calendar.iso_week(day) == 11

    def test_weekend_flags(self, calendar):
        # Feb 8-9 2020 are Saturday/Sunday.
        assert calendar.is_weekend[calendar.day_of(dt.date(2020, 2, 8))]
        assert calendar.is_weekend[calendar.day_of(dt.date(2020, 2, 9))]
        assert not calendar.is_weekend[calendar.day_of(dt.date(2020, 2, 10))]

    def test_two_weekend_days_per_week(self, calendar):
        for week in calendar.study_weeks:
            days = calendar.days_in_week(week)
            assert calendar.is_weekend[days].sum() == 2

    def test_february_days_for_home_detection(self, calendar):
        february = calendar.february_days
        assert len(february) == 27  # Feb 3 .. Feb 29
        assert all(calendar.date_of(int(d)).month == 2 for d in february)

    def test_date_day_round_trip(self, calendar):
        for day in (0, 13, 97):
            assert calendar.day_of(calendar.date_of(day)) == day

    def test_out_of_range_day(self, calendar):
        with pytest.raises(IndexError):
            calendar.date_of(98)

    def test_out_of_range_date(self, calendar):
        with pytest.raises(KeyError):
            calendar.day_of(dt.date(2020, 6, 1))

    def test_weeks_array_monotone_per_day(self, calendar):
        assert np.all(np.diff(calendar.weeks) >= 0)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            StudyCalendar(num_days=0)
