"""Conservation properties of the engine's spatial scatters.

Every user is attached somewhere at every instant, and every megabyte
of demand lands on exactly one cell — the scatters must conserve both.
These tests run a tiny simulation with hourly KPIs retained and check
the invariants against first principles.
"""

import datetime as dt

import numpy as np
import pytest

from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator, build_world


@pytest.fixture(scope="module")
def world_and_feeds():
    config = SimulationConfig(
        num_users=600, target_site_count=80, seed=61,
        keep_hourly_kpis=True,
    )
    world = build_world(config)
    feeds = Simulator(config).run()
    return world, feeds


class TestConservation:
    def test_connected_users_sum_to_population(self, world_and_feeds):
        world, feeds = world_and_feeds
        hourly = feeds.hourly_kpis
        num_study = world.agents.num_users
        for day in (3, 40, 90):
            for hour in (3, 12, 20):
                rows = hourly.filter(
                    (hourly["day"] == day) & (hourly["hour"] == hour)
                )
                total = rows["connected_users"].sum()
                # Outages remove a fraction of a percent of presence.
                assert total == pytest.approx(num_study, rel=0.02)

    def test_voice_minutes_conserved_per_day(self, world_and_feeds):
        world, feeds = world_and_feeds
        hourly = feeds.hourly_kpis
        calendar = feeds.calendar
        voice = world.voice_model
        multipliers = voice.user_minute_multipliers(
            world.agents.num_users
        )
        for day in (5, 55):
            date = calendar.date_of(day)
            expected_minutes = (
                multipliers.sum()
                * voice.settings.base_minutes_per_day
                * voice.minutes_multiplier(date)
            )
            rows = hourly.filter(hourly["day"] == day)
            measured_minutes = rows["voice_users"].sum() * 60.0
            assert measured_minutes == pytest.approx(
                expected_minutes, rel=0.02
            )

    def test_dl_volume_bounded_by_total_demand(self, world_and_feeds):
        world, feeds = world_and_feeds
        hourly = feeds.hourly_kpis
        demand = world.demand_model
        multipliers = demand.user_demand_multipliers(
            world.agents.num_users
        )
        day = feeds.calendar.day_of(dt.date(2020, 2, 25))
        params = demand.day_parameters(dt.date(2020, 2, 25))
        ceiling = (
            demand.base_daily_dl_mb()
            * multipliers.sum()
            * params.demand_multiplier
        )
        rows = hourly.filter(hourly["day"] == day)
        measured = rows["dl_volume_mb"].sum()
        # Cellular DL is the offload-discounted share of total demand
        # (plus the comparatively small voice volume).
        assert measured < ceiling
        assert measured > ceiling * 0.25

    def test_lockdown_moves_volume_not_users(self, world_and_feeds):
        __, feeds = world_and_feeds
        hourly = feeds.hourly_kpis
        calendar = feeds.calendar
        before = calendar.day_of(dt.date(2020, 2, 25))
        during = calendar.day_of(dt.date(2020, 3, 31))
        connected_before = hourly.filter(hourly["day"] == before)[
            "connected_users"
        ].sum()
        connected_during = hourly.filter(hourly["day"] == during)[
            "connected_users"
        ].sum()
        dl_before = hourly.filter(hourly["day"] == before)[
            "dl_volume_mb"
        ].sum()
        dl_during = hourly.filter(hourly["day"] == during)[
            "dl_volume_mb"
        ].sum()
        # Users don't leave the network — their traffic does.
        assert connected_during == pytest.approx(
            connected_before, rel=0.03
        )
        assert dl_during < dl_before * 0.9

    def test_median_reduction_matches_numpy(self, world_and_feeds):
        __, feeds = world_and_feeds
        hourly = feeds.hourly_kpis
        daily = feeds.radio_kpis
        cell = int(daily["cell_id"][0])
        day = 10
        hours = hourly.filter(
            (hourly["cell_id"] == cell) & (hourly["day"] == day)
        )
        row = daily.filter(
            (daily["cell_id"] == cell) & (daily["day"] == day)
        )
        for metric in ("dl_volume_mb", "radio_load_pct", "voice_users"):
            assert row[metric][0] == pytest.approx(
                np.median(hours[metric])
            )
