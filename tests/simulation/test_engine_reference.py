"""Reference-implementation check of the engine's traffic scatter.

Recomputes one cell-hour's downlink volume from first principles
(dwell × demand × offload × diurnal shares) with naive loops and
compares it against the engine's hourly KPI feed. Any regression in the
vectorized scatter shows up here.
"""

import numpy as np
import pytest

from repro.geo.oac import OAC_DEFINITIONS
from repro.mobility.trajectories import BIN_SECONDS
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import (
    Simulator,
    _HOME_LIKE_SLOTS,
    build_world,
)
from repro.traffic.profiles import (
    BIN_OF_HOUR,
    hour_weights_within_bins,
    traffic_hour_profile,
    voice_hour_profile,
)

DAY = 10
HOUR = 18

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def setup():
    config = SimulationConfig(
        num_users=300, target_site_count=50, seed=91,
        keep_hourly_kpis=True, keep_bin_dwell=True,
    )
    world = build_world(config)
    feeds = Simulator(config).run()
    return config, world, feeds


def reference_dl_for_site(config, world, feeds, site_id):
    """Naive per-user loop reproducing the engine's DL scatter."""
    agents = world.agents
    demand = world.demand_model
    voice = world.voice_model
    date = config.calendar.date_of(DAY)
    params = demand.day_parameters(date)
    demand_mult = demand.user_demand_multipliers(agents.num_users)
    voice_mult = voice.user_minute_multipliers(agents.num_users)

    wifi = np.array(
        [
            OAC_DEFINITIONS[
                world.geography.districts[d].oac
            ].home_wifi_quality
            for d in agents.home_district
        ]
    )
    cell_share, __ = params.blended_home_factors(wifi)

    bin_dwell = feeds.mobility.bin_dwell[DAY]  # (N, 6, 8)
    bin_index = int(BIN_OF_HOUR[HOUR])
    traffic_w = hour_weights_within_bins(traffic_hour_profile())
    voice_w = hour_weights_within_bins(voice_hour_profile())
    bin_share = np.add.reduceat(
        traffic_hour_profile(), np.arange(0, 24, 4)
    )[bin_index]
    voice_bin_share = np.add.reduceat(
        voice_hour_profile(), np.arange(0, 24, 4)
    )[bin_index]

    base_dl = demand.base_daily_dl_mb()
    mb_dl, mb_ul = voice.volume_mb_per_minute()
    minutes_mult = voice.minutes_multiplier(date)

    data_dl = 0.0
    voice_minutes = 0.0
    for user in range(agents.num_users):
        for slot in range(agents.anchor_sites.shape[1]):
            if agents.anchor_sites[user, slot] != site_id:
                continue
            share = bin_dwell[user, bin_index, slot] / BIN_SECONDS
            factor = (
                cell_share[user] if _HOME_LIKE_SLOTS[slot] else 1.0
            )
            data_dl += (
                share
                * base_dl
                * demand_mult[user]
                * params.demand_multiplier
                * bin_share
                * factor
            )
            voice_minutes += (
                share
                * voice.settings.base_minutes_per_day
                * voice_mult[user]
                * minutes_mult
                * voice_bin_share
            )
    return (
        data_dl * traffic_w[HOUR]
        + voice_minutes * voice_w[HOUR] * mb_dl
    )


def test_engine_scatter_matches_reference(setup):
    config, world, feeds = setup
    hourly = feeds.hourly_kpis
    active = world.topology.snapshot(DAY)
    # Pick the three busiest active sites for a meaningful comparison.
    day_rows = hourly.filter(
        (hourly["day"] == DAY) & (hourly["hour"] == HOUR)
    )
    order = np.argsort(day_rows["dl_volume_mb"])[::-1]
    cell_to_site = {
        cell: site
        for site, cell in world.topology.site_to_4g_cell.items()
    }
    checked = 0
    for row_index in order[:6]:
        cell_id = int(day_rows["cell_id"][row_index])
        site_id = cell_to_site[cell_id]
        if not active[site_id]:
            continue
        expected = reference_dl_for_site(config, world, feeds, site_id)
        measured = float(day_rows["dl_volume_mb"][row_index])
        assert measured == pytest.approx(expected, rel=1e-6), site_id
        checked += 1
        if checked >= 3:
            break
    assert checked >= 3
