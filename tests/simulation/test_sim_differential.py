"""Differential suite: vectorized event generation vs the naive oracle.

The simulation kernels (:mod:`repro.simulation.kernels`) promise that
the whole-population array programs and the per-agent/per-event loops
behind ``REPRO_SIM_NAIVE=1`` are **bitwise identical** — same RNG
streams, same floating-point operations in the same order.  This suite
enforces the promise under hypothesis:

- kernel-level: behaviour day-states, dwell assembly, dwell→segment
  flattening and signalling emission compared array by array over
  random seeds, days and population subsets;
- engine-level: full runs compared feed by feed over random
  configurations and shard counts K ∈ {1, 2, 4};
- fault × vectorized: a run crashed by the deterministic ``kill``
  fault and completed with ``Simulator.resume`` must stay bitwise
  identical to the uninterrupted vectorized run — and the oracle path
  must resume to the very same feeds.
"""

import datetime as dt
import os
from contextlib import contextmanager
from functools import lru_cache

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mobility.trajectories import BIN_SECONDS
from repro.network.signaling import (
    DwellSegments,
    SignalingGenerator,
    segments_from_dwell,
)
from repro.simulation.clock import StudyCalendar
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator, build_world
from repro.simulation.faults import RecoverySettings, ShardExecutionError

from tests.simulation.harness import assert_feeds_equivalent

SHARD_COUNTS = (1, 2, 4)


@contextmanager
def _dispatch(naive: bool):
    """Temporarily select the naive or vectorized path."""
    before = os.environ.get("REPRO_SIM_NAIVE")
    os.environ["REPRO_SIM_NAIVE"] = "1" if naive else "0"
    try:
        yield
    finally:
        if before is None:
            os.environ.pop("REPRO_SIM_NAIVE", None)
        else:
            os.environ["REPRO_SIM_NAIVE"] = before


@lru_cache(maxsize=4)
def _world(seed: int):
    calendar = StudyCalendar(first_day=dt.date(2020, 2, 17), num_days=21)
    return build_world(
        SimulationConfig(
            num_users=70,
            target_site_count=20,
            seed=seed,
            calendar=calendar,
        )
    )


# -- kernel-level -----------------------------------------------------------

@settings(max_examples=12, deadline=None)
@given(seed=st.sampled_from([3, 17]), day=st.integers(0, 20))
def test_behavior_day_state_differential(seed, day):
    behavior = _world(seed).behavior
    with _dispatch(naive=False):
        vectorized = behavior.day_state(day)
    with _dispatch(naive=True):
        naive = behavior.day_state(day)
    for name in (
        "work_s", "errand_s", "nearby_s", "social_s",
        "on_trip", "relocated", "restriction",
    ):
        assert np.array_equal(
            getattr(vectorized, name), getattr(naive, name)
        ), name


@settings(max_examples=10, deadline=None)
@given(
    seed=st.sampled_from([3, 17]),
    day=st.integers(0, 20),
    shard=st.booleans(),
)
def test_day_dwell_differential(seed, day, shard):
    world = _world(seed)
    indices = (
        np.arange(world.agents.num_users // 3, dtype=np.int64)
        if shard
        else None
    )
    with _dispatch(naive=False):
        vectorized = world.trajectories.day_dwell(day, indices)
    with _dispatch(naive=True):
        naive = world.trajectories.day_dwell(day, indices)
    assert np.array_equal(vectorized.dwell_s, naive.dwell_s)
    assert np.array_equal(vectorized.user_ids, naive.user_ids)
    assert np.array_equal(vectorized.anchor_sites, naive.anchor_sites)


@settings(max_examples=15, deadline=None)
@given(rng_seed=st.integers(0, 2**32 - 1), num_users=st.integers(0, 12))
def test_segments_from_dwell_differential(rng_seed, num_users):
    # Random dwell matrices, not just simulator-shaped ones: rows with
    # everything below the 1-second floor, empty populations, ties.
    rng = np.random.default_rng(rng_seed)
    dwell = rng.random((num_users, 6, 8)) * 3_000.0
    dwell[rng.random(dwell.shape) < 0.4] = 0.0
    anchor_sites = rng.integers(0, 25, size=(num_users, 8))
    user_ids = np.arange(num_users, dtype=np.int64) * 7 + 1
    with _dispatch(naive=False):
        vectorized = segments_from_dwell(
            dwell, anchor_sites, user_ids, BIN_SECONDS
        )
    with _dispatch(naive=True):
        naive = segments_from_dwell(
            dwell, anchor_sites, user_ids, BIN_SECONDS
        )
    for name in ("user_ids", "site_ids", "start_s", "duration_s"):
        assert np.array_equal(
            getattr(vectorized, name), getattr(naive, name)
        ), name
        assert getattr(vectorized, name).dtype == getattr(naive, name).dtype


@settings(max_examples=10, deadline=None)
@given(
    rng_seed=st.integers(0, 2**32 - 1),
    num_segments=st.integers(0, 40),
    failure_rate=st.sampled_from([0.0, 0.015, 0.4]),
)
def test_generate_day_differential(rng_seed, num_segments, failure_rate):
    rng = np.random.default_rng(rng_seed)
    users = np.sort(rng.integers(0, 10, size=num_segments))
    segments = DwellSegments(
        user_ids=users.astype(np.int64),
        site_ids=rng.integers(0, 25, size=num_segments).astype(np.int64),
        start_s=np.sort(rng.random(num_segments) * 80_000.0),
        duration_s=rng.random(num_segments) * 7_000.0 + 1.0,
    )
    generator = SignalingGenerator(failure_rate=failure_rate)
    with _dispatch(naive=False):
        vectorized = generator.generate_day(
            segments, np.random.default_rng(rng_seed)
        )
    with _dispatch(naive=True):
        naive = generator.generate_day(
            segments, np.random.default_rng(rng_seed)
        )
    assert vectorized.column_names == naive.column_names
    for column in vectorized.column_names:
        assert np.array_equal(vectorized[column], naive[column]), column
        assert vectorized[column].dtype == naive[column].dtype


# -- engine-level -----------------------------------------------------------

@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 2**16),
    num_users=st.integers(25, 90),
    num_days=st.integers(7, 14),
    shards=st.sampled_from(SHARD_COUNTS),
)
def test_engine_differential(seed, num_users, num_days, shards):
    calendar = StudyCalendar(
        first_day=dt.date(2020, 2, 17), num_days=num_days
    )
    config = SimulationConfig(
        num_users=num_users,
        target_site_count=18,
        seed=seed,
        calendar=calendar,
        emit_signaling=True,
    )
    if shards > 1:
        config = config.with_parallelism(shards, workers=1)
    with _dispatch(naive=False):
        vectorized = Simulator(config).run()
    with _dispatch(naive=True):
        naive = Simulator(config).run()
    assert_feeds_equivalent(vectorized, naive, bitwise=True)


# -- fault injection × vectorized path --------------------------------------

_FAULT_CALENDAR = StudyCalendar(first_day=dt.date(2020, 2, 24), num_days=12)
_KILL_DAY = 7


def _fault_config(shards: int) -> SimulationConfig:
    config = SimulationConfig(
        num_users=90,
        target_site_count=24,
        seed=23,
        calendar=_FAULT_CALENDAR,
        emit_signaling=True,
        recovery=RecoverySettings(max_retries=0),
    )
    return config.with_parallelism(shards, workers=1) if shards > 1 else config


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize(
    "resume_naive", [False, True], ids=["vectorized", "naive"]
)
def test_crash_resume_matches_uninterrupted_vectorized(
    shards, resume_naive, tmp_path
):
    # Crash the vectorized run mid-flight with the deterministic kill
    # fault, then finish it with resume() — on either dispatch path.
    # Both must land bitwise on the uninterrupted vectorized feeds.
    with _dispatch(naive=False):
        baseline = Simulator(_fault_config(shards)).run()
        faulty = _fault_config(shards).with_overrides(
            fault_spec=f"kill:day={_KILL_DAY}"
        )
        rundir = tmp_path / "run"
        with pytest.raises(ShardExecutionError):
            Simulator(faulty).run(checkpoint_dir=rundir)
    with _dispatch(naive=resume_naive):
        resumed = Simulator.resume(rundir)
    assert_feeds_equivalent(baseline, resumed, bitwise=True)
