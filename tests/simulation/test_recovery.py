"""Fault injection, retry/backoff, and pool degradation.

The engine's recovery ladder has three rungs — retry the shard with
capped exponential backoff, fall back from a broken process pool to
in-process execution, and (when retries are exhausted) fail loudly
with the completed days checkpointed.  Each rung must leave the feeds
*bitwise* what a fault-free run produces, and each event must land in
the telemetry counters.  The deterministic fault hook
(``fault_spec`` / ``REPRO_FAULTS``) drives all of it without any real
crashes or real clocks.
"""

import datetime as dt

import pytest

import repro.simulation.engine as engine
from repro import telemetry
from repro.simulation.clock import StudyCalendar
from repro.simulation.config import SimulationConfig
from repro.simulation.faults import (
    FaultPlan,
    InjectedFault,
    RecoverySettings,
    ShardExecutionError,
)

from tests.simulation.harness import assert_feeds_equivalent

_CALENDAR = StudyCalendar(first_day=dt.date(2020, 2, 24), num_days=14)


def _config(**overrides):
    return SimulationConfig.tiny(seed=11).with_overrides(
        num_users=160, target_site_count=40, calendar=_CALENDAR, **overrides
    )


@pytest.fixture(scope="module")
def clean_feeds():
    """The fault-free K=2 run every recovery path must reproduce."""
    return engine.Simulator(_config().with_parallelism(2)).run()


@pytest.fixture
def fake_sleep(monkeypatch):
    """Replace the retry sleep with a recorder — no real waiting."""
    delays = []
    monkeypatch.setattr(engine, "_RETRY_SLEEP", delays.append)
    return delays


@pytest.fixture
def counters():
    telemetry.enable()
    yield lambda: telemetry.snapshot()["counters"]
    telemetry.disable()


class TestRecoverySettings:
    def test_capped_exponential(self):
        settings = RecoverySettings(
            max_retries=6, backoff_base_s=0.25, backoff_cap_s=4.0
        )
        assert [settings.delay(attempt) for attempt in range(6)] == [
            0.25, 0.5, 1.0, 2.0, 4.0, 4.0,
        ]

    def test_defaults_are_modest(self):
        settings = RecoverySettings()
        assert settings.max_retries == 2
        assert settings.delay(settings.max_retries) <= settings.backoff_cap_s


class TestFaultPlan:
    def test_parse_rules(self):
        plan = FaultPlan.parse("kill:shard=2,day=60;flaky:times=2")
        with pytest.raises(InjectedFault):
            plan.check(2, 60, attempt=0, in_pool=False)
        # flaky with no shard/day constraint hits everything, twice
        with pytest.raises(InjectedFault):
            plan.check(0, 0, attempt=1, in_pool=False)
        plan.check(0, 0, attempt=2, in_pool=False)  # third attempt passes
        # kill ignores the attempt ordinal entirely
        with pytest.raises(InjectedFault):
            plan.check(2, 60, attempt=99, in_pool=False)

    def test_non_matching_days_pass(self):
        plan = FaultPlan.parse("kill:shard=2,day=60")
        plan.check(2, 59, attempt=0, in_pool=False)
        plan.check(1, 60, attempt=0, in_pool=False)

    def test_parse_rejects_garbage(self):
        for bad in ("explode:day=1", "kill:day=x", "kill:nonsense=1", ":"):
            with pytest.raises(ValueError):
                FaultPlan.parse(bad)

    def test_env_overrides_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "kill:day=1")
        plan = FaultPlan.active(_config())
        with pytest.raises(InjectedFault):
            plan.check(0, 1, attempt=0, in_pool=False)

    def test_inactive_without_spec(self):
        assert FaultPlan.active(_config()) is None


class TestRetry:
    def test_flaky_shard_retried_to_success(
        self, clean_feeds, fake_sleep, counters
    ):
        config = _config(
            fault_spec="flaky:shard=1,day=3,times=2",
            recovery=RecoverySettings(
                max_retries=3, backoff_base_s=0.25, backoff_cap_s=4.0
            ),
        ).with_parallelism(2)
        feeds = engine.Simulator(config).run()
        assert fake_sleep == [0.25, 0.5]
        assert counters()["engine.shard_retries"] == 2
        assert counters()["engine.faults_injected"] == 2
        assert_feeds_equivalent(clean_feeds, feeds, bitwise=True)

    def test_exhausted_retries_fail_loudly(self, fake_sleep, counters):
        config = _config(
            fault_spec="kill:shard=0,day=3",
            recovery=RecoverySettings(max_retries=1, backoff_base_s=0.25),
        ).with_parallelism(2)
        with pytest.raises(ShardExecutionError, match="--resume"):
            engine.Simulator(config).run()
        assert fake_sleep == [0.25]
        assert counters()["engine.shard_retries"] == 1

    def test_failed_run_checkpoints_completed_days(
        self, fake_sleep, tmp_path
    ):
        from repro.simulation.checkpoint import CheckpointStore

        config = _config(
            fault_spec="kill:shard=1,day=3",
            recovery=RecoverySettings(max_retries=0),
        ).with_parallelism(2)
        with pytest.raises(ShardExecutionError):
            engine.Simulator(config).run(checkpoint_dir=tmp_path / "run")
        store = CheckpointStore.open(tmp_path / "run")
        assert store.completed_days(0) == list(range(14))  # unaffected
        assert store.completed_days(1) == [0, 1, 2]  # up to the fault


class TestPoolDegradation:
    def test_dead_pool_degrades_to_in_process(
        self, clean_feeds, fake_sleep, counters
    ):
        # The 'exit' fault hard-kills the worker process (os._exit), so
        # the pool breaks for real; in-process it is inert, so the
        # degraded rerun completes.  One bounce, identical feeds.
        config = _config(
            fault_spec="exit:shard=1,day=3",
            recovery=RecoverySettings(max_retries=0),
        ).with_parallelism(2, workers=2)
        feeds = engine.Simulator(config).run()
        assert counters()["engine.pool_degradations"] == 1
        assert_feeds_equivalent(clean_feeds, feeds, bitwise=True)

    def test_degraded_run_reuses_checkpoints(
        self, clean_feeds, fake_sleep, counters, tmp_path
    ):
        config = _config(
            fault_spec="exit:shard=1,day=3",
            recovery=RecoverySettings(max_retries=0),
        ).with_parallelism(2, workers=2)
        feeds = engine.Simulator(config).run(checkpoint_dir=tmp_path / "r")
        # Days the pool workers finished before dying were restored
        # from the checkpoint store, not recomputed.
        assert counters().get("engine.checkpoint_days_restored", 0) > 0
        assert_feeds_equivalent(clean_feeds, feeds, bitwise=True)


class TestCorruptCheckpoint:
    def test_corrupt_checkpoint_stops_the_run(self, fake_sleep, tmp_path):
        # A poisoned checkpoint must surface as CheckpointError — never
        # be retried into a silent pool degradation (CheckpointError is
        # a ValueError, which the degrade path would otherwise catch).
        from repro.simulation.checkpoint import CheckpointError, CheckpointStore

        config = _config(recovery=RecoverySettings(max_retries=0))
        with pytest.raises(ShardExecutionError):
            engine.Simulator(
                config.with_overrides(fault_spec="kill:day=5")
            ).run(checkpoint_dir=tmp_path / "run")
        store = CheckpointStore.open(tmp_path / "run")
        from repro.simulation.faults import corrupt_file

        corrupt_file(store.day_path(0, 2))
        with pytest.raises(CheckpointError, match=r"day002\.npz"):
            engine.Simulator.resume(tmp_path / "run")
        assert fake_sleep == []  # corruption is not a transient fault
