"""Crash-and-resume end to end: the tentpole guarantee.

A run killed mid-flight and completed with ``Simulator.resume`` must
produce feeds *bitwise identical* to the uninterrupted run — for every
shard layout.  The PR 1 equivalence harness is the oracle
(``assert_feeds_equivalent(..., bitwise=True)`` compares every array
of every feed byte for byte).

The interruption is the deterministic ``kill`` fault
(:mod:`repro.simulation.faults`), so CI exercises a real mid-run abort
— completed days checkpointed, the rest missing — without signals or
subprocess choreography.
"""

import datetime as dt

import pytest

from repro.simulation.checkpoint import CheckpointStore
from repro.simulation.clock import StudyCalendar
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator
from repro.simulation.faults import RecoverySettings, ShardExecutionError

from tests.simulation.harness import assert_feeds_equivalent

SHARD_COUNTS = (1, 2, 4)

_CALENDAR = StudyCalendar(first_day=dt.date(2020, 2, 24), num_days=14)
_KILL_DAY = 9


def _config(shards: int) -> SimulationConfig:
    return (
        SimulationConfig.tiny(seed=11)
        .with_overrides(
            num_users=160,
            target_site_count=40,
            calendar=_CALENDAR,
            recovery=RecoverySettings(max_retries=0),  # fail fast
        )
        .with_parallelism(shards)
    )


_BASELINES: dict[int, object] = {}


def _baseline(shards: int):
    if shards not in _BASELINES:
        _BASELINES[shards] = Simulator(_config(shards)).run()
    return _BASELINES[shards]


def _interrupt(directory, shards: int) -> None:
    """Run with a mid-run kill so ``directory`` holds a partial run."""
    faulty = _config(shards).with_overrides(
        fault_spec=f"kill:day={_KILL_DAY}"
    )
    with pytest.raises(ShardExecutionError):
        Simulator(faulty).run(checkpoint_dir=directory)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
class TestCrashAndResume:
    def test_resume_is_bitwise_identical(self, shards, tmp_path):
        rundir = tmp_path / "run"
        _interrupt(rundir, shards)
        # The abort left a resumable directory: checkpoints, no feeds.
        assert CheckpointStore.present(rundir)
        assert not (rundir / "manifest.json").exists()
        store = CheckpointStore.open(rundir)
        for shard in range(shards):
            days = store.completed_days(shard)
            assert days == list(range(_KILL_DAY)), (
                f"shard {shard} checkpointed {days}"
            )

        feeds = Simulator.resume(rundir)
        assert_feeds_equivalent(_baseline(shards), feeds, bitwise=True)

    def test_second_resume_restores_everything(self, shards, tmp_path):
        # Resuming twice is idempotent: the second pass restores every
        # day from disk (nothing left to compute) and still matches.
        rundir = tmp_path / "run"
        _interrupt(rundir, shards)
        first = Simulator.resume(rundir)
        second = Simulator.resume(rundir)
        assert_feeds_equivalent(first, second, bitwise=True)


class TestResumeConfig:
    def test_resume_uses_stored_config(self, tmp_path):
        # resume() takes no configuration: the one pickled with the
        # store drives the run, so a resumed run can't silently diverge
        # from what the interrupted run was computing.
        rundir = tmp_path / "run"
        _interrupt(rundir, 2)
        feeds = Simulator.resume(rundir)
        assert feeds.config.seed == 11
        assert feeds.config.calendar.num_days == _CALENDAR.num_days

    def test_resume_strips_the_fault_plan(self, tmp_path):
        # The kill fault is part of the stored config; replaying it on
        # resume would abort forever.  resume() must clear it.
        rundir = tmp_path / "run"
        _interrupt(rundir, 2)
        assert Simulator.resume(rundir) is not None  # completes

    def test_resume_without_checkpoints_fails_precisely(self, tmp_path):
        from repro.simulation.checkpoint import CheckpointError

        with pytest.raises(CheckpointError, match="nothing to resume"):
            Simulator.resume(tmp_path / "empty")
