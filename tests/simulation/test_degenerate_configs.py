"""Robustness: degenerate configurations must not crash the stack."""

import datetime as dt

import numpy as np
import pytest

from repro.geo import build_uk_geography
from repro.geo.build import CountySpec, AreaSpec
from repro.geo.coordinates import LatLon
from repro.simulation.clock import StudyCalendar
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import Simulator


class TestTinyPopulations:
    def test_fifty_users_run(self):
        config = SimulationConfig(
            num_users=50, target_site_count=30, seed=1
        )
        feeds = Simulator(config).run()
        assert feeds.mobility.num_days == feeds.calendar.num_days
        assert len(feeds.radio_kpis) > 0

    def test_single_user(self):
        config = SimulationConfig(
            num_users=1, target_site_count=10, seed=2
        )
        feeds = Simulator(config).run()
        # The lone SIM may be filtered (M2M/roamer); the engine must
        # survive either way.
        assert feeds.mobility.num_users in (0, 1)


class TestShortCalendars:
    def test_two_week_window(self):
        calendar = StudyCalendar(
            first_day=dt.date(2020, 2, 3), num_days=14
        )
        config = SimulationConfig(
            num_users=200, target_site_count=30, seed=3,
            calendar=calendar,
        )
        feeds = Simulator(config).run()
        assert feeds.mobility.num_days == 14

    def test_window_without_lockdown(self):
        # Entirely pre-pandemic: nothing should surge.
        calendar = StudyCalendar(
            first_day=dt.date(2020, 2, 3), num_days=21
        )
        config = SimulationConfig(
            num_users=300, target_site_count=40, seed=4,
            calendar=calendar,
        )
        feeds = Simulator(config).run()
        voice = feeds.radio_kpis["voice_volume_mb"]
        weeks = feeds.calendar.weeks[feeds.radio_kpis["day"]]
        early = np.median(voice[weeks == 6])
        late = np.median(voice[weeks == 8])
        if early > 0:
            assert late == pytest.approx(early, rel=0.5)


class TestSingleCountyGeography:
    def test_one_county_world(self):
        counties = (
            CountySpec(
                "Soloshire",
                "Nowhere",
                LatLon(52.0, -1.0),
                15.0,
                500_000,
                "town",
                (AreaSpec("SL", 4, 1.0),),
            ),
        )
        geography = build_uk_geography(counties=counties, seed=5)
        assert len(geography.districts) == 4
        # Anchor sampling falls back gracefully when there is no other
        # county to relocate to.
        from repro.network import (
            DeviceCatalog,
            build_subscriber_base,
            build_topology,
        )
        from repro.mobility import build_agents

        topology = build_topology(geography, target_site_count=20, seed=5)
        catalog = DeviceCatalog.generate(seed=5)
        base = build_subscriber_base(
            geography, topology, catalog, num_users=100, seed=5
        )
        agents = build_agents(geography, topology, base, seed=5)
        assert agents.num_users > 0
        assert agents.anchor_sites.shape[1] == 8
