"""Serial-equivalence of the sharded parallel engine.

The headline risk of sharded execution is *silent divergence*: a
parallel run that is plausibly shaped but numerically different from
the serial engine.  These tests pin the documented contract
(:mod:`repro.simulation.sharding`):

- a sharded run equals the serial run for the same seed — per-user
  arrays bitwise, cell aggregates allclose — for shard counts 2, 4, 7;
- results are invariant to the shard count (K = 2 equals K = 4);
- repeated runs of the same layout are bitwise identical;
- the process-pool path is bitwise identical to the in-process path;
- the partitioning itself is stable, total, and balanced.
"""

import datetime as dt

import numpy as np
import pytest

from repro.simulation.clock import StudyCalendar
from repro.simulation.config import SimulationConfig
from repro.simulation.sharding import (
    ParallelismSettings,
    shard_seed_sequences,
    shard_user_indices,
    stable_shard_of,
)

from tests.simulation.harness import assert_feeds_equivalent, run_config

SHARD_COUNTS = (2, 4, 7)

# Four weeks around the lockdown: covers the pandemic phase
# transitions (demand drop, voice surge, relocations) while keeping a
# full equivalence sweep affordable. Sector KPIs and signalling are
# kept on so every optional output is under contract.
_CALENDAR = StudyCalendar(first_day=dt.date(2020, 2, 24), num_days=28)
_CONFIG = SimulationConfig(
    num_users=240,
    target_site_count=40,
    seed=77,
    calendar=_CALENDAR,
    keep_sector_kpis=True,
    emit_signaling=True,
    keep_bin_dwell=True,
)

_RUNS: dict[int, object] = {}


def _run(num_shards: int, workers: int = 1):
    """Run the shared config at a shard count (cached per layout)."""
    key = (num_shards, workers)
    if key not in _RUNS:
        config = (
            _CONFIG
            if num_shards == 1 and workers == 1
            else _CONFIG.with_parallelism(num_shards, workers=workers)
        )
        _RUNS[key] = run_config(config)
    return _RUNS[key]


class TestSerialEquivalence:
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_sharded_equals_serial(self, num_shards):
        assert_feeds_equivalent(_run(1), _run(num_shards))

    def test_shard_count_invariance(self):
        # K = 2 and K = 4 partition the users differently, yet agree.
        assert_feeds_equivalent(_run(2), _run(4))

    def test_repeated_parallel_runs_bitwise_identical(self):
        config = _CONFIG.with_parallelism(4, workers=1)
        assert_feeds_equivalent(
            run_config(config), run_config(config), bitwise=True
        )

    def test_pool_path_bitwise_equals_in_process(self):
        # Same shards on a 2-process pool: byte-for-byte the same run.
        assert_feeds_equivalent(
            _run(2, workers=1), _run(2, workers=2), bitwise=True
        )


class TestShardPartition:
    def test_assignments_are_a_partition(self):
        user_ids = np.arange(1000, 4000, 3)
        indices = shard_user_indices(user_ids, 7)
        combined = np.concatenate(indices)
        assert np.array_equal(np.sort(combined), np.arange(user_ids.size))

    def test_assignments_stable_across_calls_and_order(self):
        user_ids = np.arange(5000, 7000)
        first = stable_shard_of(user_ids, 5)
        second = stable_shard_of(user_ids, 5)
        assert np.array_equal(first, second)
        # Hash of the id, not of the row: permuting rows permutes the
        # assignment with them.
        permutation = np.random.default_rng(0).permutation(user_ids.size)
        assert np.array_equal(
            stable_shard_of(user_ids[permutation], 5), first[permutation]
        )

    def test_assignments_roughly_balanced(self):
        user_ids = np.arange(20_000)
        counts = np.bincount(stable_shard_of(user_ids, 8), minlength=8)
        assert counts.min() > 0.8 * user_ids.size / 8
        assert counts.max() < 1.2 * user_ids.size / 8

    def test_single_shard_takes_everyone(self):
        user_ids = np.arange(100)
        assert np.array_equal(
            stable_shard_of(user_ids, 1), np.zeros(100, dtype=np.int64)
        )

    def test_shard_seed_sequences_independent(self):
        streams = shard_seed_sequences(seed=2020, num_shards=4)
        draws = [
            np.random.default_rng(stream).random(8) for stream in streams
        ]
        for a in range(4):
            for b in range(a + 1, 4):
                assert not np.allclose(draws[a], draws[b])
        again = shard_seed_sequences(seed=2020, num_shards=4)
        assert np.allclose(
            np.random.default_rng(again[2]).random(8), draws[2]
        )


class TestParallelismSettings:
    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelismSettings(num_shards=0)
        with pytest.raises(ValueError):
            ParallelismSettings(workers=0)
        with pytest.raises(TypeError):
            SimulationConfig(parallelism="4x4")

    def test_with_parallelism_defaults_workers_to_shards(self):
        config = SimulationConfig.tiny().with_parallelism(4)
        assert config.parallelism == ParallelismSettings(
            num_shards=4, workers=4
        )

    def test_degenerate_more_shards_than_users(self):
        # Empty shards are legal and do not disturb the reduction.
        calendar = StudyCalendar(
            first_day=dt.date(2020, 2, 24), num_days=7
        )
        config = SimulationConfig(
            num_users=5,
            target_site_count=30,
            seed=11,
            calendar=calendar,
        )
        assert_feeds_equivalent(
            run_config(config),
            run_config(config.with_parallelism(13, workers=1)),
        )
