"""Regenerate the golden fingerprint pinned by test_golden_fingerprint.

Run from the repository root::

    PYTHONPATH=src python tests/simulation/regen_golden.py

and paste the printed dictionary over ``GOLDEN`` in
``tests/simulation/test_golden_fingerprint.py``.  Do this only when a
numerics change is *intentional* — the diff of the digests is the
reviewable record that the engine's outputs moved.
"""

import pprint
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1].parent))

from tests.simulation.harness import feeds_fingerprint, run_config
from tests.simulation.test_golden_fingerprint import golden_config


def main() -> None:
    fingerprint = feeds_fingerprint(run_config(golden_config()))
    print("GOLDEN = ", end="")
    pprint.pprint(fingerprint, sort_dicts=True)
    signaling = feeds_fingerprint(
        run_config(golden_config().with_overrides(emit_signaling=True))
    )
    print(f'GOLDEN_SIGNALING = "{signaling["signaling"]}"')


if __name__ == "__main__":
    main()
