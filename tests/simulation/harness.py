"""Shared helpers for engine-equivalence and regression testing.

The parallel engine's determinism contract
(:mod:`repro.simulation.sharding`) distinguishes two equality grades:

- **bitwise** — per-user arrays (dwell matrices) and anything derived
  from them row-wise are identical for every shard layout, and *all*
  outputs are identical between repeated runs of the same layout;
- **allclose** — per-cell/per-sector aggregates are summed shard by
  shard, so different shard counts agree only up to floating-point
  association.

:func:`assert_feeds_equivalent` encodes that contract once so every
equivalence test asserts exactly the documented guarantee, and
:func:`feeds_fingerprint` produces the stable per-array digests the
golden regression test pins.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.simulation.engine import Simulator

__all__ = [
    "run_config",
    "assert_feeds_equivalent",
    "feeds_fingerprint",
]

# Tolerance of the "allclose" grade: shard merges reorder sums over at
# most a few thousand doubles, so agreement far beyond measurement
# relevance is required — disagreement at 1e-9 relative means a real
# divergence, not floating-point association.
RTOL = 1e-9
ATOL = 1e-12

_KPI_KEY_COLUMNS = ("cell_id", "day")


def run_config(config):
    """Run the simulator for ``config`` and return the feeds."""
    return Simulator(config).run()


def _assert_array(name: str, expected, actual, bitwise: bool) -> None:
    expected = np.asarray(expected)
    actual = np.asarray(actual)
    assert expected.shape == actual.shape, (
        f"{name}: shape {actual.shape} != {expected.shape}"
    )
    if bitwise or not np.issubdtype(expected.dtype, np.floating):
        assert np.array_equal(expected, actual), f"{name}: not bitwise equal"
    else:
        assert np.allclose(expected, actual, rtol=RTOL, atol=ATOL), (
            f"{name}: beyond allclose tolerance "
            f"(max abs diff "
            f"{np.max(np.abs(expected - actual), initial=0.0)})"
        )


def _assert_frame(
    name: str, expected, actual, bitwise: bool, key_columns=()
) -> None:
    assert expected.column_names == actual.column_names, (
        f"{name}: column sets differ"
    )
    for column in expected.column_names:
        column_bitwise = bitwise or column in key_columns
        _assert_array(
            f"{name}.{column}",
            expected[column],
            actual[column],
            column_bitwise,
        )


def assert_feeds_equivalent(expected, actual, bitwise: bool = False) -> None:
    """Assert two feed bundles agree per the determinism contract.

    ``bitwise=False`` (the default) asserts the cross-shard-layout
    contract: per-user mobility arrays and signalling bitwise, cell and
    sector aggregates allclose.  ``bitwise=True`` asserts byte-for-byte
    equality of everything — the guarantee for repeated runs of the
    *same* layout.
    """
    # -- identity / structure ---------------------------------------------
    assert expected.calendar.num_days == actual.calendar.num_days
    assert expected.num_users == actual.num_users
    assert (
        expected.interconnect_upgrade_day == actual.interconnect_upgrade_day
    )

    # -- per-user mobility: always bitwise --------------------------------
    mobility_expected, mobility_actual = expected.mobility, actual.mobility
    _assert_array(
        "mobility.user_ids",
        mobility_expected.user_ids,
        mobility_actual.user_ids,
        bitwise=True,
    )
    _assert_array(
        "mobility.anchor_sites",
        mobility_expected.anchor_sites,
        mobility_actual.anchor_sites,
        bitwise=True,
    )
    assert mobility_expected.num_days == mobility_actual.num_days
    for day in range(mobility_expected.num_days):
        _assert_array(
            f"mobility.daily_dwell[{day}]",
            mobility_expected.daily_dwell[day],
            mobility_actual.daily_dwell[day],
            bitwise=True,
        )
        _assert_array(
            f"mobility.night_dwell[{day}]",
            mobility_expected.night_dwell[day],
            mobility_actual.night_dwell[day],
            bitwise=True,
        )
    if mobility_expected.bin_dwell is not None:
        assert mobility_actual.bin_dwell is not None
        for day, expected_bins in enumerate(mobility_expected.bin_dwell):
            _assert_array(
                f"mobility.bin_dwell[{day}]",
                expected_bins,
                mobility_actual.bin_dwell[day],
                bitwise=True,
            )

    # -- cell aggregates: allclose across layouts -------------------------
    _assert_frame(
        "radio_kpis",
        expected.radio_kpis,
        actual.radio_kpis,
        bitwise,
        key_columns=_KPI_KEY_COLUMNS,
    )
    _assert_frame("rat_time", expected.rat_time, actual.rat_time, bitwise)
    if expected.hourly_kpis is not None:
        assert actual.hourly_kpis is not None
        _assert_frame(
            "hourly_kpis",
            expected.hourly_kpis,
            actual.hourly_kpis,
            bitwise,
            key_columns=(*_KPI_KEY_COLUMNS, "hour"),
        )
    if expected.sector_kpis is not None:
        assert actual.sector_kpis is not None
        _assert_frame(
            "sector_kpis",
            expected.sector_kpis,
            actual.sector_kpis,
            bitwise,
            key_columns=("day", "site_id", "sector"),
        )

    # -- signalling: derived row-wise from bitwise dwell ⇒ bitwise --------
    if expected.signaling is not None:
        assert actual.signaling is not None
        assert expected.signaling.keys() == actual.signaling.keys()
        for day, frame in expected.signaling.items():
            _assert_frame(
                f"signaling[{day}]",
                frame,
                actual.signaling[day],
                bitwise=True,
            )


# -- fingerprints -----------------------------------------------------------

def _digest(array: np.ndarray, decimals: int) -> str:
    array = np.asarray(array)
    if np.issubdtype(array.dtype, np.floating):
        array = np.round(array.astype(np.float64), decimals)
        # Normalize -0.0 so the digest is sign-of-zero stable.
        array = array + 0.0
    elif array.dtype.kind in ("U", "S", "O"):
        array = np.asarray(array, dtype="U")
        payload = "\x1f".join(array.tolist()).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()
    else:
        array = array.astype(np.int64)
    payload = repr(array.shape).encode() + np.ascontiguousarray(
        array
    ).tobytes()
    return hashlib.sha256(payload).hexdigest()


def feeds_fingerprint(feeds, decimals: int = 6) -> dict[str, str]:
    """Per-array SHA256 digests of a feed bundle's measured outputs.

    Values are rounded to ``decimals`` before hashing so the digest pins
    the numerics to far beyond analysis relevance while tolerating
    last-ulp library drift.  Used by the golden regression test.
    """
    fingerprint: dict[str, str] = {}
    for column in feeds.radio_kpis.column_names:
        fingerprint[f"radio_kpis.{column}"] = _digest(
            feeds.radio_kpis[column], decimals
        )
    for column in feeds.rat_time.column_names:
        fingerprint[f"rat_time.{column}"] = _digest(
            feeds.rat_time[column], decimals
        )
    fingerprint["mobility.daily_dwell"] = _digest(
        np.stack(feeds.mobility.daily_dwell), decimals
    )
    fingerprint["mobility.night_dwell"] = _digest(
        np.stack(feeds.mobility.night_dwell), decimals
    )
    fingerprint["interconnect_upgrade_day"] = _digest(
        np.array(
            [
                -1
                if feeds.interconnect_upgrade_day is None
                else feeds.interconnect_upgrade_day
            ]
        ),
        decimals,
    )
    if feeds.signaling is not None:
        # One combined digest over every day's event frame — per-day
        # keys would balloon the pinned dictionary.
        combined = hashlib.sha256()
        for day in sorted(feeds.signaling):
            frame = feeds.signaling[day]
            combined.update(str(day).encode())
            for column in frame.column_names:
                combined.update(column.encode())
                combined.update(_digest(frame[column], decimals).encode())
        fingerprint["signaling"] = combined.hexdigest()
    return fingerprint
