"""Run the library's doctest examples as part of the suite."""

import doctest
import importlib

import pytest

MODULE_NAMES = (
    "repro.core.annual_context",
    "repro.core.metrics",
    "repro.frames.frame",
    "repro.frames.groupby",
    "repro.frames.join",
    "repro.frames.pivot",
    "repro.geo.coordinates",
    "repro.telemetry",
    "repro.telemetry.report",
    "repro.telemetry.spans",
)


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_module_doctests(name):
    # importlib is required: some module names are shadowed by the
    # functions their package re-exports (e.g. repro.frames.join).
    module = importlib.import_module(name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, "module lost its doctest examples"
