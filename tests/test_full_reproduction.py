"""The flagship test: the full-scale reproduction verdict.

Runs the default configuration end to end and requires EVERY
machine-readable paper target to fall inside its acceptance band. This
is the repository's headline claim, executed.
"""

import pytest

from repro import CovidImpactStudy, SimulationConfig


@pytest.mark.slow
def test_default_scale_reproduces_all_targets():
    study = CovidImpactStudy.run(SimulationConfig.default(seed=2020))
    verdicts = study.verdicts()
    failed = [
        (verdict.target.key, verdict.measured)
        for verdict in verdicts
        if not verdict.passed
    ]
    assert not failed, failed
    assert len(verdicts) == 26
