"""Tests for the traffic layer: applications, demand, voice, profiles."""

import datetime as dt

import numpy as np
import pytest

from repro.mobility import PandemicTimeline
from repro.traffic import (
    APP_MIX,
    DemandModel,
    VoiceModel,
    activity_hour_profile,
    hour_weights_within_bins,
    mix_summary,
)
from repro.traffic.profiles import (
    BIN_OF_HOUR,
    traffic_hour_profile,
    voice_hour_profile,
)

BASELINE = dt.date(2020, 2, 25)
LOCKDOWN = dt.date(2020, 3, 31)


@pytest.fixture(scope="module")
def timeline():
    return PandemicTimeline()


class TestApplications:
    def test_dl_shares_sum_to_one(self):
        assert sum(app.dl_share for app in APP_MIX) == pytest.approx(1.0)

    def test_streaming_is_asymmetric_conferencing_symmetric(self):
        by_name = {app.name: app for app in APP_MIX}
        assert by_name["video-streaming"].ul_dl_ratio < 0.1
        assert by_name["conferencing-voip"].ul_dl_ratio > 0.5

    def test_mix_summary_baseline(self):
        mix = mix_summary(0.0)
        assert mix["dl_demand"] == pytest.approx(1.0)
        assert 0.1 < mix["ul_dl_ratio"] < 0.25
        assert 0.15 < mix["home_cellular_share"] < 0.35

    def test_lockdown_grows_total_demand(self):
        assert mix_summary(1.0)["dl_demand"] > 1.02

    def test_lockdown_raises_ul_ratio(self):
        # Symmetric apps surge → aggregate UL:DL rises.
        assert mix_summary(1.0)["ul_dl_ratio"] > mix_summary(0.0)["ul_dl_ratio"]

    def test_lockdown_lowers_app_rate(self):
        # Provider throttling (week 12) lowers the mean session rate.
        assert (
            mix_summary(1.0)["app_rate_mbps"]
            < mix_summary(0.0)["app_rate_mbps"]
        )

    def test_home_ul_ratio_differs_from_away(self):
        mix = mix_summary(1.0)
        assert mix["home_ul_dl_ratio"] != pytest.approx(
            mix["ul_dl_ratio"], rel=0.01
        )

    def test_restriction_validated(self):
        with pytest.raises(ValueError):
            mix_summary(1.5)


class TestDemandModel:
    def test_baseline_parameters(self, timeline):
        model = DemandModel(timeline)
        params = model.day_parameters(BASELINE)
        assert params.demand_multiplier == pytest.approx(1.0)
        assert 0 < params.home_cellular_share < 0.5

    def test_lockdown_deepens_offload(self, timeline):
        model = DemandModel(timeline)
        before = model.day_parameters(BASELINE)
        after = model.day_parameters(LOCKDOWN)
        assert after.home_cellular_share < before.home_cellular_share
        assert after.home_activity < before.home_activity

    def test_news_bump_in_outbreak(self, timeline):
        model = DemandModel(timeline)
        outbreak = model.day_parameters(dt.date(2020, 3, 4))
        assert outbreak.demand_multiplier > 1.05

    def test_user_multipliers_mean_one_heavy_tail(self, timeline):
        model = DemandModel(timeline)
        draws = model.user_demand_multipliers(40_000)
        assert draws.mean() == pytest.approx(1.0, abs=0.05)
        assert np.percentile(draws, 99) > 3.0

    def test_blended_home_factors(self, timeline):
        model = DemandModel(timeline)
        params = model.day_parameters(LOCKDOWN)
        share, activity = params.blended_home_factors(
            np.array([1.0, 0.0])
        )
        assert share[0] == pytest.approx(params.home_cellular_share)
        assert share[1] == pytest.approx(params.poor_wifi_cellular_share)
        assert activity[1] > activity[0]

    def test_deterministic_multipliers(self, timeline):
        first = DemandModel(timeline, seed=5).user_demand_multipliers(100)
        second = DemandModel(timeline, seed=5).user_demand_multipliers(100)
        assert np.array_equal(first, second)


class TestVoiceModel:
    def test_baseline_multiplier_one(self, timeline):
        model = VoiceModel(timeline)
        assert model.minutes_multiplier(BASELINE) == pytest.approx(1.0)

    def test_surge_peaks_in_week_12(self, timeline):
        model = VoiceModel(timeline)
        week12 = model.minutes_multiplier(dt.date(2020, 3, 18))
        assert week12 > 2.0
        assert week12 > model.minutes_multiplier(dt.date(2020, 3, 12))

    def test_surge_persists_then_settles(self, timeline):
        model = VoiceModel(timeline)
        early = model.minutes_multiplier(dt.date(2020, 4, 10))
        late = model.minutes_multiplier(dt.date(2020, 5, 8))
        assert early > late >= model.settings.relaxation_floor

    def test_day_minutes(self, timeline):
        model = VoiceModel(timeline)
        assert model.day_minutes_per_user(BASELINE) == pytest.approx(
            model.settings.base_minutes_per_day
        )

    def test_volume_constants(self, timeline):
        dl, ul = VoiceModel(timeline).volume_mb_per_minute()
        assert dl > 0 and ul > 0


class TestProfiles:
    def test_traffic_profile_normalized(self):
        assert traffic_hour_profile().sum() == pytest.approx(1.0)

    def test_voice_profile_normalized(self):
        assert voice_hour_profile().sum() == pytest.approx(1.0)

    def test_night_trough(self):
        profile = traffic_hour_profile()
        assert profile[3] < profile[20]

    def test_activity_profile_max_one(self):
        assert activity_hour_profile().max() == pytest.approx(1.0)

    def test_bin_of_hour(self):
        assert BIN_OF_HOUR[0] == 0
        assert BIN_OF_HOUR[23] == 5
        assert len(BIN_OF_HOUR) == 24

    def test_hour_weights_sum_per_bin(self):
        weights = hour_weights_within_bins(traffic_hour_profile())
        for bin_index in range(6):
            hours = slice(bin_index * 4, bin_index * 4 + 4)
            assert weights[hours].sum() == pytest.approx(1.0)

    def test_hour_weights_validates_shape(self):
        with pytest.raises(ValueError):
            hour_weights_within_bins(np.ones(10))

    def test_zero_bin_handled(self):
        profile = np.ones(24)
        profile[0:4] = 0.0
        weights = hour_weights_within_bins(profile)
        assert weights[0:4].sum() == pytest.approx(1.0)
