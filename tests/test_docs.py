"""The documentation is part of the suite.

Two guarantees:

- every fenced ``python`` block containing doctest examples (``>>>``)
  in the top-level guides and ``docs/`` actually runs and produces the
  shown output, so documented behaviour cannot drift from the code;
- every relative markdown link between README, DESIGN.md,
  EXPERIMENTS.md and ``docs/`` resolves to a file that exists, so the
  cross-reference web cannot silently rot.

Blocks within one document share a namespace and run top to bottom —
exactly how a reader consumes them — so later examples may build on
earlier imports.
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

from repro import telemetry

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [
        REPO_ROOT / "README.md",
        REPO_ROOT / "DESIGN.md",
        REPO_ROOT / "EXPERIMENTS.md",
        *(REPO_ROOT / "docs").glob("*.md"),
    ],
    key=lambda path: path.name,
)

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
# [text](target) — excluding images and bare URLs; target split from
# an optional #anchor.
_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")


def _doctest_blocks(path: Path) -> list[str]:
    return [
        block
        for block in _FENCE.findall(path.read_text(encoding="utf-8"))
        if ">>>" in block
    ]


@pytest.mark.parametrize(
    "path", DOC_FILES, ids=lambda path: path.name
)
def test_markdown_doctests(path):
    blocks = _doctest_blocks(path)
    if not blocks:
        pytest.skip(f"{path.name} has no doctest examples")
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(verbose=False)
    namespace: dict = {}
    try:
        for index, block in enumerate(blocks):
            test = parser.get_doctest(
                block, namespace, f"{path.name}[{index}]", str(path), 0
            )
            runner.run(test, clear_globs=False)
            # DocTest copies its globals; carry definitions forward so
            # later blocks can build on earlier ones, as a reader would.
            namespace.update(test.globs)
    finally:
        telemetry.disable()  # a failing example must not leak a recorder
    assert runner.failures == 0, (
        f"{runner.failures} doctest failure(s) in {path.name}"
    )
    assert runner.tries > 0


@pytest.mark.parametrize(
    "path", DOC_FILES, ids=lambda path: path.name
)
def test_markdown_links_resolve(path):
    text = path.read_text(encoding="utf-8")
    broken = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{path.name} links to missing files: {broken}"
