"""Unit tests for the radio topology builder."""

import numpy as np
import pytest

from repro.geo import build_uk_geography, haversine_km
from repro.network import Rat, build_topology


@pytest.fixture(scope="module")
def geography():
    return build_uk_geography(seed=42)


@pytest.fixture(scope="module")
def topology(geography):
    return build_topology(geography, target_site_count=600, seed=42)


class TestDeployment:
    def test_site_count_near_target(self, topology):
        # Rounding + the ≥1-site floor can overshoot a little.
        assert 550 <= topology.num_sites <= 900

    def test_every_district_covered(self, geography, topology):
        covered = set(topology.site_district_indices.tolist())
        assert covered == set(range(len(geography.districts)))

    def test_all_sites_have_4g(self, topology):
        for site in topology.sites:
            assert Rat.LTE_4G in site.rats

    def test_central_london_denser_than_residents_imply(self, geography, topology):
        # EC has ~30x fewer residents than SW but comparable deployment
        # because of daytime attraction.
        ec = geography.district_index("EC1")
        sw = geography.district_index("SW1")
        ec_sites = topology.sites_in_district(ec).size
        sw_sites = topology.sites_in_district(sw).size
        ec_residents = geography.districts[ec].residents
        sw_residents = geography.districts[sw].residents
        assert ec_residents < sw_residents / 5
        assert ec_sites > sw_sites / 4

    def test_sites_near_district_centroid(self, geography, topology):
        for site in topology.sites[:200]:
            district = geography.districts[site.district_index]
            assert haversine_km(site.lat, site.lon, district.lat, district.lon) < 15

    def test_cells_reference_valid_sites(self, topology):
        site_ids = {site.site_id for site in topology.sites}
        for cell in topology.cells:
            assert cell.site_id in site_ids

    def test_cell_capacity_positive(self, topology):
        assert all(cell.capacity_mbps > 0 for cell in topology.cells)

    def test_site_to_4g_cell_map_complete(self, topology):
        assert len(topology.site_to_4g_cell) == topology.num_sites

    def test_deterministic(self, geography):
        first = build_topology(geography, target_site_count=300, seed=9)
        second = build_topology(geography, target_site_count=300, seed=9)
        assert first.num_sites == second.num_sites
        assert np.array_equal(first.site_lats, second.site_lats)


class TestSnapshots:
    def test_snapshot_is_deterministic_per_day(self, topology):
        first = topology.snapshot(3)
        second = topology.snapshot(3)
        assert np.array_equal(first, second)

    def test_snapshot_differs_across_days(self, topology):
        # Outages move around day to day.
        day3 = topology.snapshot(3)
        day4 = topology.snapshot(4)
        assert not np.array_equal(day3, day4) or day3.all()

    def test_most_sites_active(self, topology):
        active = topology.snapshot(10)
        assert active.mean() > 0.97

    def test_late_activations_inactive_early(self, geography):
        topology = build_topology(
            geography, target_site_count=400, seed=3,
            late_activation_share=0.3, study_days=50,
        )
        late = topology.site_activation_days > 25
        assert late.any()
        early_snapshot = topology.snapshot(0)
        assert not early_snapshot[late].any()

    def test_sites_in_unknown_district_empty(self, topology):
        assert topology.sites_in_district(10_000).size == 0


class TestSnapshotFrame:
    def test_one_row_per_site(self, topology):
        frame = topology.snapshot_frame(5)
        assert len(frame) == topology.num_sites
        assert set(frame.column_names) == {
            "site_id", "postcode", "lat", "lon", "rats", "active",
        }

    def test_status_matches_snapshot(self, topology):
        frame = topology.snapshot_frame(5)
        assert np.array_equal(frame["active"], topology.snapshot(5))

    def test_rats_strings(self, topology):
        frame = topology.snapshot_frame(0)
        assert all("4G" in rats for rats in frame["rats"])
