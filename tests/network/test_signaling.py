"""Unit tests for signalling event generation."""

import numpy as np
import pytest

from repro.network.signaling import (
    DwellSegments,
    EventType,
    MOBILITY_EVENTS,
    SignalingGenerator,
)


def make_segments() -> DwellSegments:
    # Two users; user 0 visits three sites, user 1 stays at one.
    return DwellSegments(
        user_ids=np.array([0, 0, 0, 1], dtype=np.int64),
        site_ids=np.array([10, 20, 10, 30], dtype=np.int64),
        start_s=np.array([0.0, 32_400.0, 61_200.0, 0.0]),
        duration_s=np.array([32_400.0, 28_800.0, 25_200.0, 86_400.0]),
    )


@pytest.fixture()
def feed():
    generator = SignalingGenerator()
    return generator.generate_day(make_segments(), np.random.default_rng(1))


class TestGenerator:
    def test_sorted_by_user_then_time(self, feed):
        users = feed["user_id"]
        times = feed["timestamp_s"]
        for index in range(1, len(feed)):
            assert (users[index], times[index]) >= (
                users[index - 1], times[index - 1]
            )

    def test_every_segment_start_has_mobility_event(self, feed):
        mobility_values = {event.value for event in MOBILITY_EVENTS}
        starts = {(0, 0.0), (0, 32_400.0), (0, 61_200.0), (1, 0.0)}
        observed = {
            (int(user), float(time))
            for user, time, event in zip(
                feed["user_id"], feed["timestamp_s"], feed["event"]
            )
            if int(event) in mobility_values
        }
        assert starts <= observed

    def test_first_event_per_user_is_attach(self, feed):
        for user in (0, 1):
            rows = feed.filter(feed["user_id"] == user)
            assert rows["event"][0] == EventType.ATTACH.value

    def test_attach_accompanied_by_authentication(self, feed):
        auth = feed.filter(feed["event"] == EventType.AUTHENTICATION.value)
        assert set(auth["user_id"].tolist()) == {0, 1}

    def test_in_segment_events_inside_segment(self, feed):
        service = feed.filter(
            feed["event"] == EventType.SERVICE_REQUEST.value
        )
        for user, site, time in zip(
            service["user_id"], service["site_id"], service["timestamp_s"]
        ):
            if user == 0 and site == 20:
                assert 32_400.0 <= time <= 61_200.0

    def test_timestamps_within_day(self, feed):
        assert feed["timestamp_s"].min() >= 0
        assert feed["timestamp_s"].max() <= 86_400.0

    def test_result_codes_mostly_success(self):
        generator = SignalingGenerator(failure_rate=0.1)
        segments = DwellSegments(
            user_ids=np.repeat(np.arange(200), 2),
            site_ids=np.tile(np.array([1, 2]), 200),
            start_s=np.tile(np.array([0.0, 43_200.0]), 200),
            duration_s=np.tile(np.array([43_200.0, 43_200.0]), 200),
        )
        feed = generator.generate_day(segments, np.random.default_rng(2))
        assert feed["result"].mean() == pytest.approx(0.9, abs=0.03)

    def test_event_rate_scales_with_dwell(self):
        generator = SignalingGenerator(
            service_request_rate_per_hour=4.0,
            idle_transition_rate_per_hour=0.0,
        )
        segments = DwellSegments(
            user_ids=np.array([0], dtype=np.int64),
            site_ids=np.array([1], dtype=np.int64),
            start_s=np.array([0.0]),
            duration_s=np.array([36_000.0]),  # 10 hours
        )
        feed = generator.generate_day(segments, np.random.default_rng(3))
        service = feed.filter(
            feed["event"] == EventType.SERVICE_REQUEST.value
        )
        assert 20 <= len(service) <= 60  # Poisson(40)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            SignalingGenerator(service_request_rate_per_hour=-1)
        with pytest.raises(ValueError):
            SignalingGenerator(failure_rate=1.0)

    def test_segment_column_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DwellSegments(
                user_ids=np.array([0, 1]),
                site_ids=np.array([1]),
                start_s=np.array([0.0, 1.0]),
                duration_s=np.array([1.0, 1.0]),
            )
