"""Unit tests for the TAC catalog and subscriber base."""

import numpy as np
import pytest

from repro.geo import build_uk_geography
from repro.network import (
    DeviceCatalog,
    build_subscriber_base,
    build_topology,
)
from repro.network.subscribers import NATIVE_MCC, NATIVE_MNC


@pytest.fixture(scope="module")
def geography():
    return build_uk_geography(seed=42)


@pytest.fixture(scope="module")
def topology(geography):
    return build_topology(geography, target_site_count=400, seed=42)


@pytest.fixture(scope="module")
def catalog():
    return DeviceCatalog.generate(seed=42)


@pytest.fixture(scope="module")
def base(geography, topology, catalog):
    return build_subscriber_base(
        geography, topology, catalog, num_users=5000, seed=42
    )


class TestDeviceCatalog:
    def test_contains_smartphones_and_m2m(self, catalog):
        assert catalog.smartphone_tacs.size > 0
        assert catalog.m2m_tacs.size > 0

    def test_tacs_are_eight_digits(self, catalog):
        for tac in catalog.smartphone_tacs[:5]:
            assert 10_000_000 <= tac < 100_000_000

    def test_record_lookup(self, catalog):
        tac = int(catalog.smartphone_tacs[0])
        record = catalog.record(tac)
        assert record.is_smartphone
        assert record.manufacturer

    def test_unknown_tac_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.record(1234)

    def test_sample_respects_smartphone_share(self, catalog):
        rng = np.random.default_rng(0)
        tacs = catalog.sample_tacs(rng, 4000, smartphone_share=0.8)
        share = catalog.is_smartphone(tacs).mean()
        assert share == pytest.approx(0.8, abs=0.03)

    def test_sample_share_validation(self, catalog):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            catalog.sample_tacs(rng, 10, smartphone_share=1.5)

    def test_popularity_is_zipf_like(self, catalog):
        rng = np.random.default_rng(1)
        tacs = catalog.sample_tacs(rng, 5000, smartphone_share=1.0)
        __, counts = np.unique(tacs, return_counts=True)
        counts = np.sort(counts)[::-1]
        # The most popular model dominates the tail.
        assert counts[0] > counts[-1] * 3


class TestSubscriberBase:
    def test_population_size(self, base):
        assert base.num_subscribers == 5000

    def test_native_share(self, base):
        assert base.is_native.mean() == pytest.approx(0.97, abs=0.01)

    def test_native_plmn(self, base):
        natives = base.is_native
        assert np.all(base.mccs[natives] == NATIVE_MCC)
        assert np.all(base.mncs[natives] == NATIVE_MNC)

    def test_study_mask_excludes_roamers_and_m2m(self, base):
        assert base.study_mask.sum() < base.num_subscribers
        assert np.all(base.is_smartphone[base.study_mask])
        assert np.all(base.is_native[base.study_mask])

    def test_study_population_dominates(self, base):
        # ~97% native × ~92% smartphones ≈ 89%.
        share = base.study_mask.mean()
        assert 0.80 < share < 0.95

    def test_homes_follow_census(self, base, geography):
        residents = geography.district_residents
        counts = np.bincount(
            base.home_district[base.study_mask],
            minlength=len(geography.districts),
        )
        big = residents > np.percentile(residents, 80)
        small = residents < np.percentile(residents, 20)
        users_per_resident_big = counts[big].sum() / residents[big].sum()
        users_per_resident_small = counts[small].sum() / max(
            residents[small].sum(), 1
        )
        assert users_per_resident_big == pytest.approx(
            users_per_resident_small, rel=0.5
        )

    def test_home_sites_live_in_home_district(self, base, topology):
        site_district = topology.site_district_indices
        sampled = np.random.default_rng(0).choice(
            base.num_subscribers, size=500
        )
        for user in sampled:
            assert site_district[base.home_site[user]] == base.home_district[user]

    def test_roamers_concentrate_in_attractive_districts(
        self, geography, topology, catalog
    ):
        base = build_subscriber_base(
            geography, topology, catalog,
            num_users=20_000, roamer_share=0.25, seed=11,
        )
        roamers = ~base.is_native
        attraction = geography.district_attraction
        per_capita_attraction = attraction / np.maximum(
            geography.district_residents, 1
        )
        central = per_capita_attraction > np.percentile(per_capita_attraction, 90)
        roamer_share_central = np.isin(
            base.home_district[roamers], np.flatnonzero(central)
        ).mean()
        native_share_central = np.isin(
            base.home_district[~roamers], np.flatnonzero(central)
        ).mean()
        assert roamer_share_central > native_share_central * 2

    def test_zero_users_rejected(self, geography, topology, catalog):
        with pytest.raises(ValueError):
            build_subscriber_base(
                geography, topology, catalog, num_users=0
            )

    def test_deterministic(self, geography, topology, catalog):
        first = build_subscriber_base(
            geography, topology, catalog, num_users=1000, seed=5
        )
        second = build_subscriber_base(
            geography, topology, catalog, num_users=1000, seed=5
        )
        assert np.array_equal(first.home_site, second.home_site)
        assert np.array_equal(first.tacs, second.tacs)
