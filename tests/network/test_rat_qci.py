"""Unit tests for RAT profiles and the QCI catalog."""

import pytest

from repro.network.qci import (
    ALL_BEARER_QCIS,
    VOICE_QCI,
    is_voice,
    qci_catalog,
    qci_class,
)
from repro.network.rat import RAT_PROFILES, Rat


class TestRat:
    def test_three_generations(self):
        assert {rat.value for rat in Rat} == {"2G", "3G", "4G"}

    def test_profiles_cover_all_rats(self):
        assert set(RAT_PROFILES) == set(Rat)

    def test_4g_dominates_attach_share(self):
        # §2.4: users spend ~75% of the day on 4G cells.
        assert RAT_PROFILES[Rat.LTE_4G].attach_share == pytest.approx(0.75)

    def test_attach_shares_sum_to_one(self):
        total = sum(profile.attach_share for profile in RAT_PROFILES.values())
        assert total == pytest.approx(1.0)

    def test_capacity_ordering(self):
        capacity = {
            rat: profile.sector_capacity_mbps
            for rat, profile in RAT_PROFILES.items()
        }
        assert capacity[Rat.LTE_4G] > capacity[Rat.UMTS_3G] > capacity[Rat.GSM_2G]


class TestQci:
    def test_catalog_has_nine_classes(self):
        assert len(qci_catalog()) == 9

    def test_voice_is_qci_1(self):
        assert VOICE_QCI == 1
        assert is_voice(1)
        assert not is_voice(8)

    def test_all_bearers_are_one_through_eight(self):
        assert ALL_BEARER_QCIS == tuple(range(1, 9))

    def test_voice_class_is_gbr(self):
        voice = qci_class(1)
        assert voice.guaranteed_bitrate
        assert voice.is_voice

    def test_unknown_qci_raises(self):
        with pytest.raises(KeyError):
            qci_class(42)

    def test_qci_values_unique(self):
        values = [entry.qci for entry in qci_catalog()]
        assert len(values) == len(set(values))
