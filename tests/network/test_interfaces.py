"""Tests for the 3GPP interface catalog and event enrichment."""

import numpy as np
import pytest

from repro.frames import Frame
from repro.network.interfaces import (
    Domain,
    INTERFACES,
    interface_for,
    monitored_elements,
)
from repro.network.rat import Rat
from repro.network.signaling import EventType, attach_subscriber_context


class TestInterfaceCatalog:
    def test_figure1_interfaces_present(self):
        names = {interface.name for interface in INTERFACES}
        assert names == {"Gb", "A", "Iu-PS", "Iu-CS", "S1-MME", "S1-U"}

    def test_monitored_elements(self):
        elements = monitored_elements()
        assert "MME" in elements
        assert "SGSN" in elements
        assert "MSC" in elements

    def test_lte_control_plane_on_s1_mme(self):
        for event in (EventType.ATTACH, EventType.TRACKING_AREA_UPDATE,
                      EventType.SERVICE_REQUEST):
            assert interface_for(Rat.LTE_4G, event).name == "S1-MME"

    def test_2g_data_on_gb(self):
        assert interface_for(Rat.GSM_2G, EventType.ATTACH).name == "Gb"

    def test_2g_voice_service_on_a(self):
        interface = interface_for(Rat.GSM_2G, EventType.SERVICE_REQUEST)
        assert interface.name == "A"
        assert interface.domain is Domain.CIRCUIT_SWITCHED

    def test_3g_voice_service_on_iucs(self):
        assert (
            interface_for(Rat.UMTS_3G, EventType.SERVICE_REQUEST).name
            == "Iu-CS"
        )

    def test_specs_are_3gpp(self):
        assert all(
            interface.spec.startswith("3GPP") for interface in INTERFACES
        )


class TestEnrichment:
    def make_feed(self):
        return Frame(
            {
                "user_id": np.array([0, 1, 2], dtype=np.int64),
                "site_id": np.array([5, 6, 7], dtype=np.int64),
                "timestamp_s": np.array([1.0, 2.0, 3.0]),
                "event": np.array(
                    [EventType.ATTACH.value, EventType.SERVICE_REQUEST.value,
                     EventType.DETACH.value], dtype=np.int64,
                ),
                "result": np.array([1, 1, 1], dtype=np.int64),
            }
        )

    def test_columns_added(self):
        tacs = np.array([35_000_000, 35_000_001, 86_000_000])
        mccs = np.array([234, 234, 208])
        mncs = np.array([10, 10, 1])
        out = attach_subscriber_context(
            self.make_feed(), tacs, mccs, mncs, np.random.default_rng(0)
        )
        assert out["tac"].tolist() == tacs.tolist()
        assert out["mcc"].tolist() == [234, 234, 208]
        assert set(out.column_names) >= {
            "tac", "mcc", "mnc", "rat", "interface",
        }

    def test_interfaces_match_rats(self):
        tacs = np.zeros(3, dtype=np.int64)
        mccs = np.full(3, 234)
        mncs = np.full(3, 10)
        out = attach_subscriber_context(
            self.make_feed(), tacs, mccs, mncs, np.random.default_rng(1)
        )
        for rat, interface in zip(out["rat"], out["interface"]):
            if rat == "4G":
                assert interface == "S1-MME"
            elif rat == "2G":
                assert interface in ("Gb", "A")
            else:
                assert interface in ("Iu-PS", "Iu-CS")

    def test_rat_shares_respected(self):
        feed = Frame(
            {
                "user_id": np.zeros(4000, dtype=np.int64),
                "site_id": np.zeros(4000, dtype=np.int64),
                "timestamp_s": np.arange(4000, dtype=np.float64),
                "event": np.full(4000, EventType.SERVICE_REQUEST.value),
                "result": np.ones(4000, dtype=np.int64),
            }
        )
        out = attach_subscriber_context(
            feed,
            np.zeros(1, dtype=np.int64),
            np.full(1, 234),
            np.full(1, 10),
            np.random.default_rng(2),
        )
        share_4g = np.mean(out["rat"] == "4G")
        assert share_4g == pytest.approx(0.75, abs=0.03)
