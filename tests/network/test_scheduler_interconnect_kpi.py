"""Unit tests for the scheduler, interconnect and KPI accumulator."""

import numpy as np
import pytest

from repro.frames import Frame
from repro.network import (
    CellScheduler,
    InterconnectSettings,
    KpiAccumulator,
    SchedulerSettings,
    VoiceInterconnect,
)
from repro.network.kpi import KPI_COLUMNS


class TestScheduler:
    def setup_method(self):
        self.scheduler = CellScheduler()

    def run(self, **overrides):
        defaults = dict(
            capacity_mbps=np.array([100.0]),
            offered_dl_mb=np.array([200.0]),
            offered_ul_mb=np.array([500.0]),
            active_users=np.array([5.0]),
            app_rate_dl_mbps=np.array([4.0]),
        )
        defaults.update(overrides)
        return self.scheduler.schedule_hour(**defaults)

    def test_served_never_exceeds_capacity(self):
        out = self.run(offered_dl_mb=np.array([1e9]))
        assert out.served_dl_mb[0] <= 100.0 * 3600 / 8

    def test_uncongested_serves_all(self):
        out = self.run(offered_dl_mb=np.array([1000.0]))
        assert out.served_dl_mb[0] == pytest.approx(1000.0)

    def test_load_grows_with_traffic(self):
        quiet = self.run(offered_dl_mb=np.array([1000.0]))
        busy = self.run(offered_dl_mb=np.array([20_000.0]))
        assert busy.radio_load_pct[0] > quiet.radio_load_pct[0]

    def test_load_bounded(self):
        out = self.run(
            offered_dl_mb=np.array([1e9]), active_users=np.array([1000.0])
        )
        assert 0 <= out.radio_load_pct[0] <= 100

    def test_baseline_load_present_when_idle(self):
        out = self.run(
            offered_dl_mb=np.array([0.0]),
            offered_ul_mb=np.array([0.0]),
            active_users=np.array([0.0]),
        )
        assert out.radio_load_pct[0] == pytest.approx(2.0, abs=0.5)

    def test_active_users_derived_from_volume(self):
        # 100 MB at 4 Mbps keeps a buffer busy 200 s → 0.056 avg users,
        # plus the presence-coupled background term.
        active = self.scheduler.active_users_from_volume(
            dl_volume_mb=np.array([100.0]),
            app_rate_mbps=np.array([4.0]),
            connected_users=np.array([10.0]),
        )
        assert active[0] == pytest.approx(200.0 / 3600.0 + 0.1, rel=1e-6)

    def test_active_users_rise_when_app_rate_drops(self):
        # Provider throttling: same volume, lower rate → more active
        # users — the paper's N-district effect (§5.1).
        fast = self.scheduler.active_users_from_volume(
            np.array([100.0]), np.array([4.0]), np.array([0.0])
        )
        slow = self.scheduler.active_users_from_volume(
            np.array([100.0]), np.array([3.4]), np.array([0.0])
        )
        assert slow[0] > fast[0] * 1.15

    def test_active_users_zero_rate_safe(self):
        active = self.scheduler.active_users_from_volume(
            np.array([100.0]), np.array([0.0]), np.array([0.0])
        )
        assert active[0] == 0.0

    def test_throughput_app_limited_when_cell_quiet(self):
        out = self.run(active_users=np.array([2.0]))
        # Fair share is 50 Mbps, app rate 4 Mbps: app wins.
        assert out.user_dl_throughput_mbps[0] < 4.0
        assert out.user_dl_throughput_mbps[0] > 3.0

    def test_throughput_capacity_limited_when_crowded(self):
        out = self.run(active_users=np.array([100.0]))
        assert out.user_dl_throughput_mbps[0] < 1.0

    def test_zero_capacity_cell_safe(self):
        out = self.run(capacity_mbps=np.array([0.0]))
        assert out.served_dl_mb[0] == 0.0
        assert out.user_dl_throughput_mbps[0] == 0.0

    def test_active_seconds_bounded_by_hour(self):
        out = self.run(offered_dl_mb=np.array([1e6]))
        assert 0 <= out.active_seconds[0] <= 3600

    def test_custom_settings(self):
        scheduler = CellScheduler(SchedulerSettings(baseline_load=0.2))
        out = scheduler.schedule_hour(
            capacity_mbps=np.array([100.0]),
            offered_dl_mb=np.array([0.0]),
            offered_ul_mb=np.array([0.0]),
            active_users=np.array([0.0]),
            app_rate_dl_mbps=np.array([4.0]),
        )
        assert out.radio_load_pct[0] == pytest.approx(20.0, abs=0.5)


class TestInterconnect:
    def make(self, **overrides) -> VoiceInterconnect:
        settings = InterconnectSettings(
            capacity_mb_per_day=1000.0, **overrides
        )
        return VoiceInterconnect(settings)

    def test_baseline_loss_when_quiet(self):
        link = self.make()
        loss = link.process_day(800.0)  # util 0.44
        assert loss < 0.004

    def test_congestion_raises_loss(self):
        link = self.make()
        quiet = link.process_day(800.0)
        busy = link.process_day(2000.0)  # util 1.1
        assert busy > quiet * 2

    def test_ops_upgrade_after_sustained_alarm(self):
        link = self.make(detection_days=3)
        for _ in range(3):
            link.process_day(2200.0)
        assert link.upgraded
        assert link.capacity_mb_per_day > 1000.0

    def test_loss_recovers_after_upgrade(self):
        link = self.make(detection_days=2)
        spike = link.process_day(2400.0)
        link.process_day(2400.0)
        recovered = link.process_day(2400.0)
        assert link.upgraded
        assert recovered < spike / 2

    def test_alarm_streak_resets(self):
        link = self.make(detection_days=2)
        link.process_day(2400.0)  # alarm 1
        link.process_day(100.0)  # resets
        link.process_day(2400.0)  # alarm 1 again
        assert not link.upgraded

    def test_negative_volume_rejected(self):
        link = self.make()
        with pytest.raises(ValueError):
            link.process_day(-1.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            VoiceInterconnect(InterconnectSettings(capacity_mb_per_day=0.0))


class TestKpiAccumulator:
    def make_metrics(self, value: float, cells: int = 3):
        return {name: np.full(cells, value) for name in KPI_COLUMNS}

    def make_accumulator(self, cells: int = 3, keep_hourly: bool = False):
        return KpiAccumulator(
            cell_ids=np.arange(cells, dtype=np.int64),
            postcodes=np.array([f"PC{i}" for i in range(cells)]),
            keep_hourly=keep_hourly,
        )

    def test_daily_median_of_hours(self):
        acc = self.make_accumulator()
        for hour, value in enumerate([1.0, 5.0, 9.0]):
            acc.add_hour(0, hour, self.make_metrics(value))
        acc.finalize_day()
        daily = acc.daily_frame()
        assert np.all(daily["dl_volume_mb"] == 5.0)
        assert len(daily) == 3

    def test_multiple_days_stack(self):
        acc = self.make_accumulator()
        for day in range(2):
            acc.add_hour(day, 0, self.make_metrics(float(day)))
            acc.finalize_day()
        daily = acc.daily_frame()
        assert len(daily) == 6
        assert set(daily["day"].tolist()) == {0, 1}

    def test_cannot_mix_days(self):
        acc = self.make_accumulator()
        acc.add_hour(0, 0, self.make_metrics(1.0))
        with pytest.raises(ValueError, match="finaliz"):
            acc.add_hour(1, 0, self.make_metrics(1.0))

    def test_finalize_without_data_raises(self):
        with pytest.raises(ValueError):
            self.make_accumulator().finalize_day()

    def test_daily_frame_with_pending_raises(self):
        acc = self.make_accumulator()
        acc.add_hour(0, 0, self.make_metrics(1.0))
        with pytest.raises(ValueError, match="pending"):
            acc.daily_frame()

    def test_missing_metric_rejected(self):
        acc = self.make_accumulator()
        metrics = self.make_metrics(1.0)
        del metrics["voice_users"]
        with pytest.raises(ValueError, match="missing"):
            acc.add_hour(0, 0, metrics)

    def test_wrong_shape_rejected(self):
        acc = self.make_accumulator()
        metrics = self.make_metrics(1.0)
        metrics["dl_volume_mb"] = np.array([1.0])
        with pytest.raises(ValueError, match="shape"):
            acc.add_hour(0, 0, metrics)

    def test_hourly_frame_retained_when_asked(self):
        acc = self.make_accumulator(keep_hourly=True)
        acc.add_hour(0, 7, self.make_metrics(2.0))
        acc.finalize_day()
        hourly = acc.hourly_frame()
        assert len(hourly) == 3
        assert set(hourly["hour"].tolist()) == {7}

    def test_hourly_frame_requires_flag(self):
        acc = self.make_accumulator()
        with pytest.raises(ValueError):
            acc.hourly_frame()

    def test_empty_daily_frame_has_schema(self):
        daily = self.make_accumulator().daily_frame()
        assert isinstance(daily, Frame)
        assert "dl_volume_mb" in daily.column_names
        assert len(daily) == 0
